//! Offline stand-in for the `proptest` property-testing framework.
//!
//! This build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This crate vendors the API subset the
//! workspace tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, `any::<T>()`, range and tuple strategies, and
//! `proptest::collection::vec`. Cases are generated from a seed derived
//! deterministically from the test name and the case index, so every run
//! explores the same inputs and failures reproduce. There is no shrinking:
//! a failing case reports its inputs via `Debug` and the case index.

/// Runner configuration (`cases` is the only knob the subset honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// Why a property case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message explains how.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with `msg`.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// SplitMix64 generator; cheap, stateless seeding, good enough for
    /// test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for case `case` of the property named by `name_hash`.
        pub fn deterministic(name_hash: u64, case: u64) -> Self {
            Self {
                state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` of 0 yields 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Multiply-shift reduction; bias is irrelevant for test inputs.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// FNV-1a over the property name, used to seed its RNG stream.
    pub fn name_hash(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and tuples.

    use crate::test_runner::TestRng;

    /// Something that can generate values of `Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).saturating_sub(self.start as u64);
                    assert!(span > 0, "cannot generate from an empty range");
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as u64) - (*self.start() as u64);
                    *self.start() + rng.below(span.saturating_add(1).max(1)) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the full-range strategy for primitive types.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// The canonical strategy for `T`: any representable value.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of `size`-range length whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: each `fn` runs `cases` times over generated
/// inputs. Accepts an optional `#![proptest_config(..)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::test_runner::name_hash(stringify!($name));
                let mut case: u64 = 0;
                let mut passed: u32 = 0;
                // Cap the total attempts so a rejection-heavy property
                // (aggressive prop_assume!) still terminates.
                let max_attempts = config.cases as u64 * 16;
                while passed < config.cases && case < max_attempts {
                    let mut rng = $crate::test_runner::TestRng::deterministic(seed, case);
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // Captured before the body runs: the body may move the
                    // inputs, and a failing case must still report them.
                    let inputs = format!("{:?}", ($(&$arg,)*));
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match result {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\n  inputs: {}",
                                case - 1,
                                stringify!($name),
                                msg,
                                inputs
                            );
                        }
                    }
                }
                // Mirror real proptest: a property that cannot find enough
                // acceptable inputs must fail loudly, not silently pass.
                assert!(
                    passed == config.cases,
                    "proptest {}: too many global rejects ({passed} of {} cases ran in {case} attempts)",
                    stringify!($name),
                    config.cases,
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Skips the current case when its inputs do not satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
