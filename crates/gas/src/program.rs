//! The [`GasProgram`] trait and iteration control types.

use chaos_graph::{Edge, VertexId};

use crate::record::Record;

/// Which edge endpoint supplies scatter state this iteration.
///
/// Chaos scatters over outgoing edges (PowerLyra simplification). Some
/// multi-phase algorithms (the backward sweep of SCC) need to push values
/// against edge direction; streaming the same edge set with
/// [`Direction::In`] sends updates to `e.src` using `e.dst`'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Stream out-edges: update flows `src -> dst` (the default GAS flow).
    #[default]
    Out,
    /// Stream in-edges: update flows `dst -> src`.
    In,
}

/// Number of algorithm-defined aggregate slots carried to barriers.
pub const CUSTOM_AGGREGATES: usize = 4;

/// Global aggregates combined across all machines at the end of each
/// iteration (piggybacked on barrier messages), driving convergence and
/// phase switching.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationAggregates {
    /// Updates produced by the scatter phase.
    pub updates_produced: u64,
    /// Vertices whose `apply` reported a change.
    pub vertices_changed: u64,
    /// Algorithm-defined sums over vertex state.
    pub custom: [f64; CUSTOM_AGGREGATES],
}

impl IterationAggregates {
    /// Element-wise accumulation of another machine's aggregates.
    pub fn absorb(&mut self, other: &IterationAggregates) {
        self.updates_produced += other.updates_produced;
        self.vertices_changed += other.vertices_changed;
        for (a, b) in self.custom.iter_mut().zip(other.custom.iter()) {
            *a += b;
        }
    }
}

/// What the program wants the runtime to do after an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Run another scatter/gather iteration.
    Continue,
    /// The computation has converged; stop.
    Done,
}

/// An edge-centric GAS program (§2 of the paper).
///
/// The runtime clones the program onto every machine;
/// [`GasProgram::end_iteration`] is invoked identically everywhere with the
/// same global aggregates, so per-phase mutable state (iteration counters,
/// FW/BW mode switches) stays consistent across the cluster without extra
/// communication.
///
/// # Order independence
///
/// As in the paper, the final result of `scatter`, `gather`/`merge` and
/// `apply` must not depend on the order in which edges and updates are
/// processed, because chunks are delivered in arbitrary order and vertices
/// may be replicated across machines during gather.
pub trait GasProgram: Clone + Send + 'static {
    /// Per-vertex state (the only persistent computation state).
    type VertexState: Record + Default + PartialEq + std::fmt::Debug;
    /// Update payload carried from scatter to gather.
    type Update: Record;
    /// In-memory accumulator; `Default` must be the gather identity.
    /// `Sync` because accumulator arrays are shared (`Arc`) across engine
    /// actors, which the parallel backend dispatches on worker threads.
    type Accum: Clone + Default + Send + Sync + 'static;

    /// Short human-readable name ("BFS", "PR", ...).
    fn name(&self) -> &'static str;

    /// Whether the algorithm requires the undirected expansion of the input
    /// (the first five algorithms in Table 1 do).
    fn needs_undirected(&self) -> bool {
        false
    }

    /// Initial state of vertex `v` given its out-degree (computed during
    /// the pre-processing pass).
    fn init(&self, v: VertexId, out_degree: u64) -> Self::VertexState;

    /// Edge-streaming direction for the current iteration.
    fn direction(&self) -> Direction {
        Direction::Out
    }

    /// Whether any iteration uses [`Direction::In`]. When true, the engine
    /// additionally materializes a destination-keyed copy of the edge set
    /// during pre-processing so backward sweeps can stream partition-local
    /// edges (this is the storage cost X-Stream pays for its transposed
    /// edge lists).
    fn uses_reverse_edges(&self) -> bool {
        false
    }

    /// Produces an update over `edge` from the scatter-side state, or `None`
    /// to stay silent. `v` is the scatter-side vertex (`edge.src` when the
    /// direction is [`Direction::Out`], `edge.dst` when [`Direction::In`])
    /// and `state` its value; `iter` is the 0-based iteration number.
    fn scatter(
        &self,
        v: VertexId,
        state: &Self::VertexState,
        edge: &Edge,
        iter: u32,
    ) -> Option<Self::Update>;

    /// Folds one update into an accumulator. Must be commutative and
    /// associative over updates. `dst_state` is a read-only snapshot of the
    /// destination vertex's pre-apply state: every engine working on the
    /// partition (master or stealer) has loaded the same vertex set from
    /// storage (Figure 4, line 50 of the paper), so this is consistent
    /// under work stealing.
    fn gather(
        &self,
        acc: &mut Self::Accum,
        dst: VertexId,
        dst_state: &Self::VertexState,
        payload: &Self::Update,
    );

    /// Combines two replica accumulators (commutative).
    fn merge(&self, into: &mut Self::Accum, from: &Self::Accum);

    /// Applies the merged accumulator to the vertex state; returns whether
    /// the state changed (feeds [`IterationAggregates::vertices_changed`]).
    fn apply(
        &self,
        v: VertexId,
        state: &mut Self::VertexState,
        acc: &Self::Accum,
        iter: u32,
    ) -> bool;

    /// Contribution of a vertex to the custom aggregate slots, sampled after
    /// apply each iteration.
    fn aggregate(&self, _state: &Self::VertexState) -> [f64; CUSTOM_AGGREGATES] {
        [0.0; CUSTOM_AGGREGATES]
    }

    /// Observes the global aggregates at the end of iteration `iter` and
    /// decides whether to continue. May mutate phase state.
    fn end_iteration(&mut self, iter: u32, agg: &IterationAggregates) -> Control;

    /// Encoded payload width of one update, for the storage cost model.
    fn update_payload_bytes(&self) -> u64 {
        Self::Update::ENCODED_BYTES as u64
    }

    /// Encoded width of one vertex record, for the storage cost model.
    fn vertex_state_bytes(&self) -> u64 {
        Self::VertexState::ENCODED_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_absorb() {
        let mut a = IterationAggregates {
            updates_produced: 1,
            vertices_changed: 2,
            custom: [1.0, 0.0, 0.0, 0.0],
        };
        let b = IterationAggregates {
            updates_produced: 10,
            vertices_changed: 20,
            custom: [0.5, 1.0, 0.0, 0.0],
        };
        a.absorb(&b);
        assert_eq!(a.updates_produced, 11);
        assert_eq!(a.vertices_changed, 22);
        assert_eq!(a.custom, [1.5, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn direction_default_is_out() {
        assert_eq!(Direction::default(), Direction::Out);
    }
}
