//! The [`GasProgram`] trait and iteration control types.

use chaos_graph::{Edge, VertexId};

use crate::active::ActivityModel;
use crate::record::{Record, Update};

/// Which edge endpoint supplies scatter state this iteration.
///
/// Chaos scatters over outgoing edges (PowerLyra simplification). Some
/// multi-phase algorithms (the backward sweep of SCC) need to push values
/// against edge direction; streaming the same edge set with
/// [`Direction::In`] sends updates to `e.src` using `e.dst`'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Stream out-edges: update flows `src -> dst` (the default GAS flow).
    #[default]
    Out,
    /// Stream in-edges: update flows `dst -> src`.
    In,
}

/// Number of algorithm-defined aggregate slots carried to barriers.
pub const CUSTOM_AGGREGATES: usize = 4;

/// Global aggregates combined across all machines at the end of each
/// iteration (piggybacked on barrier messages), driving convergence and
/// phase switching.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationAggregates {
    /// Updates produced by the scatter phase.
    pub updates_produced: u64,
    /// Vertices whose `apply` reported a change.
    pub vertices_changed: u64,
    /// Algorithm-defined sums over vertex state.
    pub custom: [f64; CUSTOM_AGGREGATES],
}

impl IterationAggregates {
    /// Element-wise accumulation of another machine's aggregates.
    pub fn absorb(&mut self, other: &IterationAggregates) {
        self.updates_produced += other.updates_produced;
        self.vertices_changed += other.vertices_changed;
        for (a, b) in self.custom.iter_mut().zip(other.custom.iter()) {
            *a += b;
        }
    }
}

/// Destination for updates emitted by a scatter kernel.
///
/// The engine supplies the sink; [`GasProgram::scatter_chunk`] calls
/// [`UpdateSink::push`] once per produced update, in edge order. Keeping
/// the sink a trait (rather than a `Vec`) lets the distributed engine
/// route updates straight into per-partition output buffers without an
/// intermediate copy.
pub trait UpdateSink<U> {
    /// Emits one update addressed to vertex `dst`.
    fn push(&mut self, dst: VertexId, payload: U);
}

/// A plain vector is a sink: the sequential executor and tests collect
/// updates in order.
impl<U> UpdateSink<U> for Vec<Update<U>> {
    #[inline]
    fn push(&mut self, dst: VertexId, payload: U) {
        Vec::push(self, Update { dst, payload });
    }
}

/// What the program wants the runtime to do after an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Run another scatter/gather iteration.
    Continue,
    /// The computation has converged; stop.
    Done,
}

/// An edge-centric GAS program (§2 of the paper).
///
/// The runtime clones the program onto every machine;
/// [`GasProgram::end_iteration`] is invoked identically everywhere with the
/// same global aggregates, so per-phase mutable state (iteration counters,
/// FW/BW mode switches) stays consistent across the cluster without extra
/// communication.
///
/// # Order independence
///
/// As in the paper, the final result of `scatter`, `gather`/`merge` and
/// `apply` must not depend on the order in which edges and updates are
/// processed, because chunks are delivered in arbitrary order and vertices
/// may be replicated across machines during gather.
pub trait GasProgram: Clone + Send + 'static {
    /// Per-vertex state (the only persistent computation state).
    type VertexState: Record + Default + PartialEq + std::fmt::Debug;
    /// Update payload carried from scatter to gather.
    type Update: Record;
    /// In-memory accumulator; `Default` must be the gather identity.
    /// `Sync` because accumulator arrays are shared (`Arc`) across engine
    /// actors, which the parallel backend dispatches on worker threads.
    type Accum: Clone + Default + Send + Sync + 'static;

    /// Short human-readable name ("BFS", "PR", ...).
    fn name(&self) -> &'static str;

    /// Whether the algorithm requires the undirected expansion of the input
    /// (the first five algorithms in Table 1 do).
    fn needs_undirected(&self) -> bool {
        false
    }

    /// Initial state of vertex `v` given its out-degree (computed during
    /// the pre-processing pass).
    fn init(&self, v: VertexId, out_degree: u64) -> Self::VertexState;

    /// Edge-streaming direction for the current iteration.
    fn direction(&self) -> Direction {
        Direction::Out
    }

    /// Whether any iteration uses [`Direction::In`]. When true, the engine
    /// additionally materializes a destination-keyed copy of the edge set
    /// during pre-processing so backward sweeps can stream partition-local
    /// edges (this is the storage cost X-Stream pays for its transposed
    /// edge lists).
    fn uses_reverse_edges(&self) -> bool {
        false
    }

    /// Produces an update over `edge` from the scatter-side state, or `None`
    /// to stay silent. `v` is the scatter-side vertex (`edge.src` when the
    /// direction is [`Direction::Out`], `edge.dst` when [`Direction::In`])
    /// and `state` its value; `iter` is the 0-based iteration number.
    fn scatter(
        &self,
        v: VertexId,
        state: &Self::VertexState,
        edge: &Edge,
        iter: u32,
    ) -> Option<Self::Update>;

    /// Folds one update into an accumulator. Must be commutative and
    /// associative over updates. `dst_state` is a read-only snapshot of the
    /// destination vertex's pre-apply state: every engine working on the
    /// partition (master or stealer) has loaded the same vertex set from
    /// storage (Figure 4, line 50 of the paper), so this is consistent
    /// under work stealing.
    fn gather(
        &self,
        acc: &mut Self::Accum,
        dst: VertexId,
        dst_state: &Self::VertexState,
        payload: &Self::Update,
    );

    /// Combines two replica accumulators (commutative).
    fn merge(&self, into: &mut Self::Accum, from: &Self::Accum);

    /// Applies the merged accumulator to the vertex state; returns whether
    /// the state changed (feeds [`IterationAggregates::vertices_changed`]).
    fn apply(
        &self,
        v: VertexId,
        state: &mut Self::VertexState,
        acc: &Self::Accum,
        iter: u32,
    ) -> bool;

    /// Scatters a whole edge chunk against one partition's vertex set.
    ///
    /// `base` is the first vertex id of the partition and `states` its
    /// (loaded) vertex set, so the scatter-side state of vertex `v` is
    /// `states[v - base]`. The kernel must emit exactly the updates the
    /// per-edge [`GasProgram::scatter`] would, in edge order — the engine's
    /// batched/per-edge equivalence is property-tested. Override it on hot
    /// programs with a branch-light batched body; the default simply loops
    /// over `scatter` honoring [`GasProgram::direction`].
    fn scatter_chunk<S: UpdateSink<Self::Update>>(
        &self,
        base: VertexId,
        states: &[Self::VertexState],
        edges: &[Edge],
        iter: u32,
        out: &mut S,
    ) {
        match self.direction() {
            Direction::Out => {
                for e in edges {
                    if let Some(p) = self.scatter(e.src, &states[(e.src - base) as usize], e, iter)
                    {
                        out.push(e.dst, p);
                    }
                }
            }
            Direction::In => {
                for e in edges {
                    if let Some(p) = self.scatter(e.dst, &states[(e.dst - base) as usize], e, iter)
                    {
                        out.push(e.src, p);
                    }
                }
            }
        }
    }

    /// Gathers a whole update chunk into one partition's accumulators.
    ///
    /// `base`, `states` and `accums` are partition-local (`v - base`
    /// indexed); `accums[i]` must end exactly as the per-update
    /// [`GasProgram::gather`] fold would leave it. Override on hot programs
    /// for a tight batched loop.
    fn gather_chunk(
        &self,
        base: VertexId,
        states: &[Self::VertexState],
        accums: &mut [Self::Accum],
        updates: &[Update<Self::Update>],
    ) {
        for u in updates {
            let off = (u.dst - base) as usize;
            self.gather(&mut accums[off], u.dst, &states[off], &u.payload);
        }
    }

    /// The program's activity contract (see [`crate::active`]). The
    /// default keeps the paper's dense streaming: every vertex is assumed
    /// able to scatter every iteration and nothing is ever skipped.
    fn activity(&self) -> ActivityModel {
        ActivityModel::Dense
    }

    /// Whether vertex `v` may emit *any* update this iteration, under
    /// [`ActivityModel::Frontier`] or [`ActivityModel::Shrinking`].
    ///
    /// Must be conservative: `false` promises that [`GasProgram::scatter`]
    /// returns `None` for every edge whose scatter-side endpoint is `v` at
    /// this iteration. The dense-streaming reference mode enforces the
    /// promise at run time.
    fn is_active(&self, _v: VertexId, _state: &Self::VertexState, _iter: u32) -> bool {
        true
    }

    /// Whether `edge` can never produce an update in any future iteration
    /// (under [`ActivityModel::Shrinking`]): the engine may tombstone it
    /// and drop it from storage during chunk compaction. `v`/`state` are
    /// the scatter-side endpoint and its current value. Must only return
    /// `true` when deadness is *permanent* — compaction is irreversible.
    fn edge_dead(&self, _v: VertexId, _state: &Self::VertexState, _edge: &Edge, _iter: u32) -> bool {
        false
    }

    /// Whether dead-edge scanning is meaningful this iteration (gates the
    /// per-chunk [`GasProgram::dead_edges`] pass under
    /// [`ActivityModel::Shrinking`]; phases in which deadness cannot be
    /// decided yet should return `false`).
    fn shrinks_now(&self, _iter: u32) -> bool {
        false
    }

    /// Counts the permanently dead edges in a chunk (chunk-granularity
    /// companion of [`GasProgram::edge_dead`], same equivalence contract
    /// as the scatter/gather kernels). The default loops over `edge_dead`
    /// honoring [`GasProgram::direction`].
    fn dead_edges(&self, base: VertexId, states: &[Self::VertexState], edges: &[Edge], iter: u32) -> u64 {
        let mut dead = 0;
        match self.direction() {
            Direction::Out => {
                for e in edges {
                    if self.edge_dead(e.src, &states[(e.src - base) as usize], e, iter) {
                        dead += 1;
                    }
                }
            }
            Direction::In => {
                for e in edges {
                    if self.edge_dead(e.dst, &states[(e.dst - base) as usize], e, iter) {
                        dead += 1;
                    }
                }
            }
        }
        dead
    }

    /// Contribution of a vertex to the custom aggregate slots, sampled after
    /// apply each iteration.
    fn aggregate(&self, _state: &Self::VertexState) -> [f64; CUSTOM_AGGREGATES] {
        [0.0; CUSTOM_AGGREGATES]
    }

    /// Observes the global aggregates at the end of iteration `iter` and
    /// decides whether to continue. May mutate phase state.
    fn end_iteration(&mut self, iter: u32, agg: &IterationAggregates) -> Control;

    /// Encoded payload width of one update, for the storage cost model.
    fn update_payload_bytes(&self) -> u64 {
        Self::Update::ENCODED_BYTES as u64
    }

    /// Encoded width of one vertex record, for the storage cost model.
    fn vertex_state_bytes(&self) -> u64 {
        Self::VertexState::ENCODED_BYTES as u64
    }
}

/// Adapter that pins a program to the *default* per-record chunk kernels,
/// ignoring any specialized [`GasProgram::scatter_chunk`] /
/// [`GasProgram::gather_chunk`] the wrapped program defines.
///
/// Every scalar method delegates; the chunk kernels fall back to the trait
/// defaults (which loop over the delegating `scatter`/`gather`). Running
/// the same workload with `P` and with `PerRecordKernels<P>` must produce
/// bit-identical results — the equivalence contract of the kernel API,
/// pinned by the workspace property tests.
#[derive(Debug, Clone, Default)]
pub struct PerRecordKernels<P>(pub P);

impl<P: GasProgram> GasProgram for PerRecordKernels<P> {
    type VertexState = P::VertexState;
    type Update = P::Update;
    type Accum = P::Accum;

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn needs_undirected(&self) -> bool {
        self.0.needs_undirected()
    }

    fn init(&self, v: VertexId, out_degree: u64) -> Self::VertexState {
        self.0.init(v, out_degree)
    }

    fn direction(&self) -> Direction {
        self.0.direction()
    }

    fn uses_reverse_edges(&self) -> bool {
        self.0.uses_reverse_edges()
    }

    fn scatter(
        &self,
        v: VertexId,
        state: &Self::VertexState,
        edge: &Edge,
        iter: u32,
    ) -> Option<Self::Update> {
        self.0.scatter(v, state, edge, iter)
    }

    fn gather(
        &self,
        acc: &mut Self::Accum,
        dst: VertexId,
        dst_state: &Self::VertexState,
        payload: &Self::Update,
    ) {
        self.0.gather(acc, dst, dst_state, payload)
    }

    fn merge(&self, into: &mut Self::Accum, from: &Self::Accum) {
        self.0.merge(into, from)
    }

    fn apply(
        &self,
        v: VertexId,
        state: &mut Self::VertexState,
        acc: &Self::Accum,
        iter: u32,
    ) -> bool {
        self.0.apply(v, state, acc, iter)
    }

    fn activity(&self) -> ActivityModel {
        self.0.activity()
    }

    fn is_active(&self, v: VertexId, state: &Self::VertexState, iter: u32) -> bool {
        self.0.is_active(v, state, iter)
    }

    fn edge_dead(&self, v: VertexId, state: &Self::VertexState, edge: &Edge, iter: u32) -> bool {
        self.0.edge_dead(v, state, edge, iter)
    }

    fn shrinks_now(&self, iter: u32) -> bool {
        self.0.shrinks_now(iter)
    }

    // `dead_edges` is deliberately NOT forwarded: like `scatter_chunk` and
    // `gather_chunk`, it is a chunk kernel pinned to the default per-edge
    // loop (over the delegating `edge_dead`), so the equivalence tests also
    // cover specialized dead-scan bodies.

    fn aggregate(&self, state: &Self::VertexState) -> [f64; CUSTOM_AGGREGATES] {
        self.0.aggregate(state)
    }

    fn end_iteration(&mut self, iter: u32, agg: &IterationAggregates) -> Control {
        self.0.end_iteration(iter, agg)
    }

    fn update_payload_bytes(&self) -> u64 {
        self.0.update_payload_bytes()
    }

    fn vertex_state_bytes(&self) -> u64 {
        self.0.vertex_state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_absorb() {
        let mut a = IterationAggregates {
            updates_produced: 1,
            vertices_changed: 2,
            custom: [1.0, 0.0, 0.0, 0.0],
        };
        let b = IterationAggregates {
            updates_produced: 10,
            vertices_changed: 20,
            custom: [0.5, 1.0, 0.0, 0.0],
        };
        a.absorb(&b);
        assert_eq!(a.updates_produced, 11);
        assert_eq!(a.vertices_changed, 22);
        assert_eq!(a.custom, [1.5, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn direction_default_is_out() {
        assert_eq!(Direction::default(), Direction::Out);
    }
}
