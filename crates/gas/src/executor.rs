//! Sequential GAS executor: a direct transcription of the paper's Figure 1.
//!
//! This executor runs a [`GasProgram`] over an in-memory edge list with no
//! partitioning, no storage and no distribution. It serves two purposes:
//! unit-testing algorithms against textbook oracles, and acting as the
//! semantic specification that the distributed engine must match
//! bit-for-bit (modulo floating-point summation order).

use chaos_graph::InputGraph;

use crate::program::{Control, GasProgram, IterationAggregates};
use crate::record::Update;

/// Outcome of a sequential run.
#[derive(Debug, Clone)]
pub struct SequentialResult<V> {
    /// Final vertex states.
    pub states: Vec<V>,
    /// Aggregates of every iteration, in order.
    pub iterations: Vec<IterationAggregates>,
}

impl<V> SequentialResult<V> {
    /// Number of iterations executed.
    pub fn num_iterations(&self) -> u32 {
        self.iterations.len() as u32
    }

    /// Aggregates of the final iteration.
    ///
    /// # Panics
    ///
    /// Panics if the run executed zero iterations.
    pub fn final_aggregates(&self) -> &IterationAggregates {
        self.iterations.last().expect("at least one iteration")
    }
}

/// Runs `program` to convergence (or `max_iterations`) over `graph`.
///
/// # Panics
///
/// Panics if the program fails to converge within `max_iterations`; callers
/// pick a bound appropriate for the algorithm (propagation algorithms need
/// on the order of the graph diameter).
pub fn run_sequential<P: GasProgram>(
    mut program: P,
    graph: &InputGraph,
    max_iterations: u32,
) -> SequentialResult<P::VertexState> {
    let degrees = graph.out_degrees();
    let n = graph.num_vertices as usize;
    let mut states: Vec<P::VertexState> = (0..graph.num_vertices)
        .map(|v| program.init(v, degrees[v as usize]))
        .collect();
    let mut iterations = Vec::new();
    for iter in 0.. {
        assert!(
            iter < max_iterations,
            "{} failed to converge in {max_iterations} iterations",
            program.name()
        );
        // Scatter (Figure 1): one pass over the edge list, through the
        // chunk kernel (specialized programs take their batched path here
        // too; the default loops over the per-edge `scatter`).
        let mut updates: Vec<Update<P::Update>> = Vec::new();
        program.scatter_chunk(0, &states, &graph.edges, iter, &mut updates);
        // Gather: fold updates into per-vertex accumulators.
        let mut accums: Vec<P::Accum> = (0..n).map(|_| P::Accum::default()).collect();
        program.gather_chunk(0, &states, &mut accums, &updates);
        // Apply + aggregates.
        let mut agg = IterationAggregates {
            updates_produced: updates.len() as u64,
            ..Default::default()
        };
        for v in 0..n {
            if program.apply(v as u64, &mut states[v], &accums[v], iter) {
                agg.vertices_changed += 1;
            }
        }
        for s in &states {
            let c = program.aggregate(s);
            for (slot, x) in agg.custom.iter_mut().zip(c.iter()) {
                *slot += x;
            }
        }
        let control = program.end_iteration(iter, &agg);
        iterations.push(agg);
        if control == Control::Done {
            break;
        }
    }
    SequentialResult { states, iterations }
}
