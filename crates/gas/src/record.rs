//! Fixed-size record encoding.
//!
//! The storage subsystem's file backend persists vertex, edge and update
//! records as fixed-width little-endian byte strings. A hand-rolled codec
//! (rather than serde) keeps the hot path allocation-free, the format
//! stable, and the workspace dependency-light.

use chaos_graph::VertexId;

/// A fixed-size serializable record.
///
/// Implementations must write exactly [`Record::ENCODED_BYTES`] bytes and
/// round-trip: `decode(encode(x)) == x`. Records are `Send + Sync` because
/// chunk payloads are shared (`Arc`) across engine actors, which the
/// parallel execution backend dispatches on worker threads.
pub trait Record: Clone + Send + Sync + 'static {
    /// Exact encoded width in bytes.
    const ENCODED_BYTES: usize;

    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a record from exactly [`Record::ENCODED_BYTES`] bytes.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`Record::ENCODED_BYTES`].
    fn decode(buf: &[u8]) -> Self;
}

macro_rules! impl_record_prim {
    ($t:ty, $n:expr) => {
        impl Record for $t {
            const ENCODED_BYTES: usize = $n;
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &[u8]) -> Self {
                let mut b = [0u8; $n];
                b.copy_from_slice(&buf[..$n]);
                <$t>::from_le_bytes(b)
            }
        }
    };
}

impl_record_prim!(u32, 4);
impl_record_prim!(u64, 8);
impl_record_prim!(i64, 8);
impl_record_prim!(f32, 4);
impl_record_prim!(f64, 8);

impl Record for () {
    const ENCODED_BYTES: usize = 0;
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_buf: &[u8]) -> Self {}
}

impl Record for bool {
    const ENCODED_BYTES: usize = 1;
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(buf: &[u8]) -> Self {
        buf[0] != 0
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    const ENCODED_BYTES: usize = A::ENCODED_BYTES + B::ENCODED_BYTES;
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &[u8]) -> Self {
        (A::decode(buf), B::decode(&buf[A::ENCODED_BYTES..]))
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    const ENCODED_BYTES: usize = A::ENCODED_BYTES + B::ENCODED_BYTES + C::ENCODED_BYTES;
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(buf: &[u8]) -> Self {
        (
            A::decode(buf),
            B::decode(&buf[A::ENCODED_BYTES..]),
            C::decode(&buf[A::ENCODED_BYTES + B::ENCODED_BYTES..]),
        )
    }
}

impl Record for chaos_graph::Edge {
    const ENCODED_BYTES: usize = 20;
    fn encode(&self, out: &mut Vec<u8>) {
        self.src.encode(out);
        self.dst.encode(out);
        self.weight.encode(out);
    }
    fn decode(buf: &[u8]) -> Self {
        Self {
            src: u64::decode(buf),
            dst: u64::decode(&buf[8..]),
            weight: f32::decode(&buf[16..]),
        }
    }
}

/// An update in flight: destination vertex plus algorithm payload (§2).
#[derive(Debug, Clone, PartialEq)]
pub struct Update<U> {
    /// Destination vertex of the update.
    pub dst: VertexId,
    /// Algorithm-specific payload.
    pub payload: U,
}

impl<U: Record> Record for Update<U> {
    const ENCODED_BYTES: usize = 8 + U::ENCODED_BYTES;
    fn encode(&self, out: &mut Vec<u8>) {
        self.dst.encode(out);
        self.payload.encode(out);
    }
    fn decode(buf: &[u8]) -> Self {
        Self {
            dst: u64::decode(buf),
            payload: U::decode(&buf[8..]),
        }
    }
}

/// Encodes a slice of records into a contiguous byte buffer.
pub fn encode_all<R: Record>(records: &[R]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * R::ENCODED_BYTES);
    for r in records {
        r.encode(&mut out);
    }
    out
}

/// Decodes a buffer produced by [`encode_all`].
///
/// # Panics
///
/// Panics if the buffer length is not a multiple of the record width.
pub fn decode_all<R: Record>(buf: &[u8]) -> Vec<R> {
    if R::ENCODED_BYTES == 0 {
        return Vec::new();
    }
    assert_eq!(
        buf.len() % R::ENCODED_BYTES,
        0,
        "buffer is not a whole number of records"
    );
    buf.chunks_exact(R::ENCODED_BYTES).map(R::decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Record + PartialEq + std::fmt::Debug>(x: R) {
        let mut buf = Vec::new();
        x.encode(&mut buf);
        assert_eq!(buf.len(), R::ENCODED_BYTES);
        assert_eq!(R::decode(&buf), x);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(42u32);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(3.25f32);
        roundtrip(-0.125f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1u32, 2.5f64));
        roundtrip((u64::MAX, 0u32, f32::MIN_POSITIVE));
    }

    #[test]
    fn update_roundtrip() {
        roundtrip(Update {
            dst: 123456789,
            payload: (7u32, 1.5f32),
        });
        assert_eq!(<Update<(u32, f32)> as Record>::ENCODED_BYTES, 16);
    }

    #[test]
    fn encode_decode_all() {
        let xs: Vec<u32> = (0..100).collect();
        let buf = encode_all(&xs);
        assert_eq!(buf.len(), 400);
        assert_eq!(decode_all::<u32>(&buf), xs);
    }

    #[test]
    #[should_panic(expected = "whole number of records")]
    fn ragged_buffer_rejected() {
        let _ = decode_all::<u32>(&[1, 2, 3]);
    }
}
