//! The activity contract: which vertices can emit updates this iteration.
//!
//! Chaos as published streams the *entire* edge set through scatter every
//! iteration. Many of the Table 1 algorithms are frontier computations
//! whose useful scatter sources shrink monotonically (BFS levels, SSSP
//! relaxations, WCC label changes, Borůvka contraction); streaming edges
//! whose source provably emits nothing is pure waste. A program opts into
//! selective streaming by declaring an [`ActivityModel`] and answering
//! [`crate::GasProgram::is_active`] per vertex; the engine summarizes the
//! answers into an [`ActiveSet`] bitset per streaming partition and ships
//! it with chunk requests so storage engines can skip whole chunks whose
//! source window contains no active vertex — without reading them.
//!
//! The contract is *conservative*: if `is_active(v, state, iter)` is
//! `false`, then `scatter(v, state, e, iter)` must return `None` for every
//! edge whose scatter-side endpoint is `v`. The dense-streaming reference
//! mode (`Streaming::Reference` in `chaos-core`) enforces this at run time
//! by streaming every skipped chunk through the kernel and panicking if
//! anything comes out.

use chaos_graph::VertexId;

/// How a program's scatter activity evolves across iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivityModel {
    /// Every vertex may scatter every iteration; the engine streams the
    /// full edge set (the paper's behavior, and the default).
    #[default]
    Dense,
    /// [`crate::GasProgram::is_active`] gates scatter sources; storage
    /// chunks whose source window holds no active vertex are skipped.
    Frontier,
    /// [`ActivityModel::Frontier`], plus [`crate::GasProgram::edge_dead`]
    /// identifies edges that can never produce an update again; the engine
    /// tombstones them and compacts edge chunks in place once dead density
    /// crosses a threshold, so later iterations stream fewer bytes.
    Shrinking,
}

/// A bitset of active scatter-side vertices over one partition's
/// contiguous vertex range.
///
/// Built by the computation engine from the freshly loaded vertex states
/// at the start of a scatter stream (after any phase switch, so the bits
/// reflect the program's *current* phase), and shipped with every edge
/// chunk request. Identical for every engine streaming the partition —
/// masters and stealers load the same vertex set — so skip decisions are
/// consistent under work stealing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    base: VertexId,
    len: u64,
    words: Vec<u64>,
    active: u64,
}

impl ActiveSet {
    /// Builds the set for vertices `base..base + n`, asking `f` for each
    /// partition-local offset.
    pub fn from_fn(base: VertexId, n: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = vec![0u64; n.div_ceil(64)];
        let mut active = 0u64;
        for off in 0..n {
            if f(off) {
                words[off / 64] |= 1u64 << (off % 64);
                active += 1;
            }
        }
        Self {
            base,
            len: n as u64,
            words,
            active,
        }
    }

    /// First vertex id covered.
    pub fn base(&self) -> VertexId {
        self.base
    }

    /// Number of vertices covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set covers no vertices at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of active vertices.
    pub fn active_count(&self) -> u64 {
        self.active
    }

    /// Whether no vertex is active (every chunk is skippable).
    pub fn none_active(&self) -> bool {
        self.active == 0
    }

    /// Whether every covered vertex is active (the set carries no
    /// information; senders may drop it and stream densely).
    pub fn all_active(&self) -> bool {
        self.active == self.len
    }

    /// Whether vertex `v` is active. Vertices outside the covered range
    /// are inactive.
    pub fn contains(&self, v: VertexId) -> bool {
        if v < self.base || v >= self.base + self.len {
            return false;
        }
        let off = (v - self.base) as usize;
        self.words[off / 64] & (1u64 << (off % 64)) != 0
    }

    /// Whether any vertex in the *inclusive* id window `[lo, hi]` is
    /// active — the chunk-skip test. An inverted window (`lo > hi`, the
    /// representation of an empty chunk) holds nothing.
    pub fn any_in_window(&self, lo: VertexId, hi: VertexId) -> bool {
        if lo > hi || self.active == 0 {
            return false;
        }
        let lo = lo.max(self.base);
        let hi = hi.min(self.base + self.len - 1);
        if lo > hi {
            return false;
        }
        let (lo, hi) = ((lo - self.base) as usize, (hi - self.base) as usize);
        let (wl, wh) = (lo / 64, hi / 64);
        let first_mask = !0u64 << (lo % 64);
        let last_mask = !0u64 >> (63 - hi % 64);
        if wl == wh {
            return self.words[wl] & first_mask & last_mask != 0;
        }
        if self.words[wl] & first_mask != 0 || self.words[wh] & last_mask != 0 {
            return true;
        }
        self.words[wl + 1..wh].iter().any(|&w| w != 0)
    }

    /// Smallest active vertex id in the *inclusive* window `[lo, hi]`, or
    /// `None` if the window holds no active vertex — the block-skip probe.
    /// With sorted chunk interiors the serving side binary-searches the
    /// block index for the block containing the returned key, jumping over
    /// every block between two frontier vertices in one step.
    pub fn first_active_in(&self, lo: VertexId, hi: VertexId) -> Option<VertexId> {
        if lo > hi || self.active == 0 || self.len == 0 {
            return None;
        }
        let lo = lo.max(self.base);
        let hi = hi.min(self.base + self.len - 1);
        if lo > hi {
            return None;
        }
        let (lo, hi) = ((lo - self.base) as usize, (hi - self.base) as usize);
        let (wl, wh) = (lo / 64, hi / 64);
        for w in wl..=wh {
            let mut word = self.words[w];
            if w == wl {
                word &= !0u64 << (lo % 64);
            }
            if w == wh {
                word &= !0u64 >> (63 - hi % 64);
            }
            if word != 0 {
                let off = w * 64 + word.trailing_zeros() as usize;
                return Some(self.base + off as u64);
            }
        }
        None
    }

    /// Wire size of the set when shipped with a chunk request: the packed
    /// bitmap plus a small fixed header.
    pub fn wire_bytes(&self) -> u64 {
        self.len.div_ceil(8) + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_counts_and_contains() {
        let s = ActiveSet::from_fn(100, 130, |off| off % 3 == 0);
        assert_eq!(s.len(), 130);
        assert_eq!(s.active_count(), 44);
        assert!(s.contains(100) && s.contains(103) && !s.contains(101));
        assert!(!s.contains(99) && !s.contains(230), "out of range");
        assert!(!s.all_active() && !s.none_active());
    }

    #[test]
    fn window_queries_cross_word_boundaries() {
        let s = ActiveSet::from_fn(0, 256, |off| off == 70 || off == 200);
        assert!(s.any_in_window(70, 70));
        assert!(s.any_in_window(0, 70));
        assert!(s.any_in_window(64, 127));
        assert!(!s.any_in_window(0, 69));
        assert!(!s.any_in_window(71, 199));
        assert!(s.any_in_window(71, 200));
        assert!(s.any_in_window(0, u64::MAX), "clamped to the covered range");
        assert!(!s.any_in_window(257, 1000), "fully outside");
    }

    #[test]
    fn inverted_window_is_empty() {
        let s = ActiveSet::from_fn(0, 64, |_| true);
        assert!(s.all_active());
        assert!(!s.any_in_window(u64::MAX, 0), "empty-chunk representation");
        assert!(s.any_in_window(5, 5));
    }

    #[test]
    fn empty_and_full_sets() {
        let none = ActiveSet::from_fn(10, 100, |_| false);
        assert!(none.none_active());
        assert!(!none.any_in_window(0, u64::MAX));
        let empty = ActiveSet::from_fn(0, 0, |_| true);
        assert!(empty.is_empty() && empty.none_active());
        assert!(!empty.any_in_window(0, 10));
    }

    #[test]
    fn first_active_in_finds_lowest_and_clamps() {
        let s = ActiveSet::from_fn(100, 256, |off| off == 70 || off == 200);
        assert_eq!(s.first_active_in(0, u64::MAX), Some(170));
        assert_eq!(s.first_active_in(170, 170), Some(170));
        assert_eq!(s.first_active_in(171, 299), None);
        assert_eq!(s.first_active_in(171, 300), Some(300));
        assert_eq!(s.first_active_in(301, u64::MAX), None);
        assert_eq!(s.first_active_in(u64::MAX, 0), None, "inverted window");
        let none = ActiveSet::from_fn(0, 128, |_| false);
        assert_eq!(none.first_active_in(0, u64::MAX), None);
        let empty = ActiveSet::from_fn(0, 0, |_| true);
        assert_eq!(empty.first_active_in(0, 10), None);
    }

    #[test]
    fn first_active_in_agrees_with_any_in_window() {
        let s = ActiveSet::from_fn(5, 200, |off| off % 7 == 3 || off == 63 || off == 64);
        for lo in (0..220).step_by(3) {
            for hi in (lo..225).step_by(5) {
                let first = s.first_active_in(lo, hi);
                assert_eq!(first.is_some(), s.any_in_window(lo, hi));
                if let Some(v) = first {
                    assert!(s.contains(v) && v >= lo && v <= hi);
                    if v > lo {
                        assert!(!s.any_in_window(lo, v - 1), "nothing active below the returned key");
                    }
                }
            }
        }
    }

    #[test]
    fn wire_bytes_scale_with_len() {
        assert_eq!(ActiveSet::from_fn(0, 0, |_| false).wire_bytes(), 16);
        assert_eq!(ActiveSet::from_fn(0, 8, |_| false).wire_bytes(), 17);
        assert_eq!(ActiveSet::from_fn(0, 1024, |_| false).wire_bytes(), 144);
    }
}
