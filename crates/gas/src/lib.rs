//! Edge-centric Gather-Apply-Scatter programming model (§2 of the paper).
//!
//! Chaos adopts the PowerLyra-simplified GAS model: updates are scattered
//! only over outgoing edges and gathered only over incoming edges. The state
//! of the computation lives entirely in per-vertex values; updates are the
//! only intermediate data. The runtime may replicate a vertex across
//! machines during gather (work stealing), so the user-supplied functions
//! must be order-independent (§2).
//!
//! One deliberate deviation from the paper's Figure 3 pseudo-code: instead
//! of calling `Apply` once per replica accumulator, programs provide a
//! commutative [`GasProgram::merge`] that folds replica accumulators
//! together, after which `Apply` runs once. The two formulations are
//! equivalent for order-independent programs (the paper's requirement), and
//! the merge form keeps each algorithm's `apply` a plain function of one
//! accumulator. The master/stealer accumulator-exchange protocol is
//! unchanged.

pub mod active;
pub mod executor;
pub mod program;
pub mod record;

pub use active::{ActiveSet, ActivityModel};
pub use executor::{run_sequential, SequentialResult};
pub use program::{
    Control, Direction, GasProgram, IterationAggregates, PerRecordKernels, UpdateSink,
    CUSTOM_AGGREGATES,
};
pub use record::{Record, Update};
