//! Network fabric model for the Chaos reproduction.
//!
//! Chaos assumes a full-bisection-bandwidth network whose per-machine link
//! bandwidth exceeds per-machine storage bandwidth (§1, §7 of the paper).
//! The fabric model captures exactly the parts of the network that decide
//! whether that assumption holds:
//!
//! - a transmit rate-server per NIC (outgoing serialization),
//! - a receive rate-server per NIC (incast absorbs here),
//! - a fixed propagation delay through the switch,
//! - no shared-core constraint (full bisection), with an optional aggregate
//!   cap for experiments that model an oversubscribed switch.
//!
//! Messages between co-located engines (same machine) bypass the fabric and
//! pay only a small local-delivery latency, mirroring the paper's deployment
//! of the computation and storage engine inside one process.

use chaos_sim::{Resource, Time};

/// Fabric configuration.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of machines (NIC pairs).
    pub machines: usize,
    /// Per-NIC bandwidth in bytes/second (e.g. 40 GigE = 5 GB/s).
    pub nic_bytes_per_sec: u64,
    /// One-way propagation delay through the switch.
    pub propagation: Time,
    /// Latency of delivering a message between threads of the same process.
    pub local_delivery: Time,
    /// Optional aggregate switch capacity in bytes/second; `None` models a
    /// full-bisection switch.
    pub switch_cap_bytes_per_sec: Option<u64>,
}

impl FabricConfig {
    /// 40 GigE full-bisection fabric as in the paper's rack (§8).
    pub fn forty_gige(machines: usize) -> Self {
        Self {
            machines,
            nic_bytes_per_sec: 5_000_000_000, // 40 Gb/s
            propagation: 25 * chaos_sim::MICROS,
            local_delivery: 2 * chaos_sim::MICROS,
            switch_cap_bytes_per_sec: None,
        }
    }

    /// 1 GigE fabric used in the Figure 12 slow-network experiment.
    pub fn one_gige(machines: usize) -> Self {
        Self {
            machines,
            nic_bytes_per_sec: 125_000_000, // 1 Gb/s
            propagation: 50 * chaos_sim::MICROS,
            local_delivery: 2 * chaos_sim::MICROS,
            switch_cap_bytes_per_sec: None,
        }
    }

    /// Round-trip time of an empty message, used to derive the batching
    /// amplification factor φ = 1 + R_network / R_storage (Equation 3).
    pub fn rtt(&self) -> Time {
        2 * self.propagation
    }

    /// Minimum end-to-end latency of any cross-machine message: the switch
    /// propagation delay (serialization only adds to it). This is the safe
    /// lookahead bound for conservatively-synchronized parallel execution —
    /// no message sent at `t` to another machine can arrive before
    /// `t + min_latency()`.
    pub fn min_latency(&self) -> Time {
        self.propagation
    }
}

/// One fabric degradation window: remote messages touching `machine` —
/// as sender or receiver — pay `extra` additional delivery latency while
/// `from <= now < until`, modelling a slow-NIC straggler. The penalty is
/// purely *additive*, so the conservative [`FabricConfig::min_latency`]
/// lookahead bound the parallel executor synchronizes on stays valid and
/// degraded runs remain bit-identical across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedWindow {
    /// The straggler machine.
    pub machine: usize,
    /// First degraded instant (inclusive).
    pub from: Time,
    /// First healthy instant (exclusive end of the window).
    pub until: Time,
    /// Extra delivery latency per affected message.
    pub extra: Time,
}

/// Per-fabric transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Total messages that crossed the switch.
    pub remote_messages: u64,
    /// Total bytes that crossed the switch.
    pub remote_bytes: u64,
    /// Total messages delivered machine-locally.
    pub local_messages: u64,
    /// Total bytes delivered machine-locally.
    pub local_bytes: u64,
    /// Remote messages that paid a degradation penalty.
    pub degraded_messages: u64,
    /// Total extra latency charged by degradation windows.
    pub degraded_time: Time,
}

/// The fabric: computes arrival times for messages and accounts bytes.
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: FabricConfig,
    tx: Vec<Resource>,
    rx: Vec<Resource>,
    switch: Option<Resource>,
    degraded: Vec<DegradedWindow>,
    stats: FabricStats,
}

impl Fabric {
    /// Builds a fabric from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.machines == 0`.
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(cfg.machines > 0, "fabric needs at least one machine");
        let tx = (0..cfg.machines)
            .map(|_| Resource::new(cfg.nic_bytes_per_sec, 0))
            .collect();
        let rx = (0..cfg.machines)
            .map(|_| Resource::new(cfg.nic_bytes_per_sec, 0))
            .collect();
        let switch = cfg
            .switch_cap_bytes_per_sec
            .map(|cap| Resource::new(cap, 0));
        Self {
            cfg,
            tx,
            rx,
            switch,
            degraded: Vec::new(),
            stats: FabricStats::default(),
        }
    }

    /// Installs the degradation windows for this run. An empty list (the
    /// default) leaves every delivery on the exact fault-free path.
    pub fn set_degraded(&mut self, windows: Vec<DegradedWindow>) {
        self.degraded = windows;
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Minimum end-to-end latency of any cross-machine message (see
    /// [`FabricConfig::min_latency`]); the safe lookahead bound the
    /// parallel executor synchronizes on.
    pub fn min_end_to_end_latency(&self) -> Time {
        self.cfg.min_latency()
    }

    /// Computes the delivery time of a `bytes`-sized message sent at `now`
    /// from machine `from` to machine `to`, updating NIC queues.
    ///
    /// Local messages (`from == to`) bypass the NICs.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range.
    pub fn send(&mut self, now: Time, from: usize, to: usize, bytes: u64) -> Time {
        assert!(from < self.cfg.machines && to < self.cfg.machines);
        if from == to {
            self.stats.local_messages += 1;
            self.stats.local_bytes += bytes;
            return now + self.cfg.local_delivery;
        }
        self.stats.remote_messages += 1;
        self.stats.remote_bytes += bytes;
        // Slow-NIC straggler penalty: sum the extra latency of every
        // degradation window covering `now` on either endpoint.
        let mut extra = 0;
        for w in &self.degraded {
            if (w.machine == from || w.machine == to) && w.from <= now && now < w.until {
                extra += w.extra;
            }
        }
        if extra > 0 {
            self.stats.degraded_messages += 1;
            self.stats.degraded_time += extra;
        }
        // Serialize out of the sender NIC...
        let tx_done = self.tx[from].serve(now, bytes);
        // ...optionally through a capped switch...
        let through = match &mut self.switch {
            Some(sw) => sw.serve(tx_done, bytes),
            None => tx_done,
        };
        // ...propagate, then absorb into the receiver NIC (incast queues
        // build up here), paying any straggler penalty on top.
        self.rx[to].serve(through + self.cfg.propagation, bytes) + extra
    }

    /// Aggregate bytes moved through the switch per second over `[0, horizon]`.
    pub fn aggregate_remote_throughput(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.stats.remote_bytes as f64 / (horizon as f64 / 1e9)
        }
    }

    /// Utilization of the busiest receive NIC over `[0, horizon]`.
    pub fn max_rx_utilization(&self, horizon: Time) -> f64 {
        self.rx
            .iter()
            .map(|r| r.utilization(horizon))
            .fold(0.0, f64::max)
    }
}

/// The fabric is the actor runtime's network model: the executor asks it
/// for arrival times when absorbing `Send::Net` messages, and the parallel
/// backend sizes its synchronization windows from the latency bounds.
impl chaos_runtime::Network for Fabric {
    fn send(&mut self, now: Time, from: usize, to: usize, bytes: u64) -> Time {
        Fabric::send(self, now, from, to, bytes)
    }

    fn min_latency(&self) -> Time {
        self.min_end_to_end_latency()
    }

    fn local_latency(&self, _machine: usize) -> Time {
        // Same-machine deliveries bypass the NICs and pay a constant
        // in-process hop, independent of size and fabric state — exactly
        // the contract `Network::local_latency` requires.
        self.cfg.local_delivery
    }

    fn send_local_batch(&mut self, now: Time, machine: usize, total_bytes: u64, count: u64) -> Time {
        // One accounting update for a whole coalesced envelope: byte and
        // message totals land exactly where `count` individual local sends
        // would have put them, and the arrival is the same constant hop.
        assert!(machine < self.cfg.machines);
        debug_assert!(count >= 1);
        self.stats.local_messages += count;
        self.stats.local_bytes += total_bytes;
        now + self.cfg.local_delivery
    }

    fn time_quantum(&self) -> Time {
        // Most deliveries sit a small multiple of one of these two
        // constants past the clock; the smaller one is the natural
        // calendar bucket width.
        self.cfg.local_delivery.min(self.cfg.propagation).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaos_sim::{MIB, MICROS};

    fn fabric(machines: usize) -> Fabric {
        Fabric::new(FabricConfig {
            machines,
            nic_bytes_per_sec: 1000 * MIB,
            propagation: 10 * MICROS,
            local_delivery: MICROS,
            switch_cap_bytes_per_sec: None,
        })
    }

    #[test]
    fn local_messages_bypass_nics() {
        let mut f = fabric(2);
        let t = f.send(100, 0, 0, 10 * MIB);
        assert_eq!(t, 100 + MICROS);
        assert_eq!(f.stats().remote_messages, 0);
        assert_eq!(f.stats().local_messages, 1);
    }

    #[test]
    fn remote_message_pays_tx_prop_rx() {
        let mut f = fabric(2);
        // 1000 MiB/s, 1 MiB message => ~1.048576 ms serialization each side.
        let ser = Resource::new(1000 * MIB, 0).transfer_time(MIB);
        let t = f.send(0, 0, 1, MIB);
        assert_eq!(t, 2 * ser + 10 * MICROS);
    }

    #[test]
    fn sender_nic_serializes_messages() {
        let mut f = fabric(3);
        let ser = Resource::new(1000 * MIB, 0).transfer_time(MIB);
        let t1 = f.send(0, 0, 1, MIB);
        let t2 = f.send(0, 0, 2, MIB);
        // Second message must wait for the first to clear the TX NIC.
        assert_eq!(t2 - t1, ser);
    }

    #[test]
    fn incast_queues_at_receiver() {
        let mut f = fabric(3);
        let ser = Resource::new(1000 * MIB, 0).transfer_time(MIB);
        let t1 = f.send(0, 0, 2, MIB);
        let t2 = f.send(0, 1, 2, MIB);
        // Both arrive at machine 2; receiver RX serializes them.
        assert_eq!(t1, 2 * ser + 10 * MICROS);
        assert_eq!(t2, t1 + ser);
    }

    #[test]
    fn switch_cap_limits_aggregate() {
        let mut f = Fabric::new(FabricConfig {
            machines: 4,
            nic_bytes_per_sec: 1000 * MIB,
            propagation: 0,
            local_delivery: 0,
            switch_cap_bytes_per_sec: Some(1000 * MIB),
        });
        let a = f.send(0, 0, 1, 100 * MIB);
        let b = f.send(0, 2, 3, 100 * MIB);
        // Disjoint NIC pairs, but the capped switch serializes the flows.
        assert!(b > a);
    }

    #[test]
    fn degradation_windows_add_latency_for_either_endpoint() {
        let mut healthy = fabric(3);
        let mut f = fabric(3);
        f.set_degraded(vec![DegradedWindow {
            machine: 1,
            from: 1000,
            until: 2000,
            extra: 77,
        }]);
        // Outside the window: identical to the healthy fabric.
        assert_eq!(f.send(0, 0, 1, MIB), healthy.send(0, 0, 1, MIB));
        // Inside, both directions touching machine 1 pay the penalty...
        assert_eq!(f.send(1000, 0, 1, MIB), healthy.send(1000, 0, 1, MIB) + 77);
        assert_eq!(f.send(1500, 1, 2, MIB), healthy.send(1500, 1, 2, MIB) + 77);
        // ...while an unrelated pair and local deliveries do not.
        assert_eq!(f.send(1500, 0, 2, MIB), healthy.send(1500, 0, 2, MIB));
        assert_eq!(f.send(1500, 1, 1, 64), healthy.send(1500, 1, 1, 64));
        assert_eq!(f.stats().degraded_messages, 2);
        assert_eq!(f.stats().degraded_time, 154);
        // The penalty is additive: the lookahead bound still holds.
        assert!(f.send(1999, 0, 1, 1) >= 1999 + f.min_end_to_end_latency());
    }

    #[test]
    fn min_latency_bounds_every_cross_machine_send() {
        use chaos_runtime::Network as _;
        let mut f = fabric(4);
        let lookahead = f.min_end_to_end_latency();
        assert!(lookahead > 0);
        assert_eq!(lookahead, f.config().min_latency());
        // Stress the NIC queues; arrivals must never undercut the bound.
        for i in 0..50u64 {
            let now = i * 3;
            let t = f.send(now, (i % 4) as usize, ((i + 1) % 4) as usize, 1 + i * MIB / 8);
            assert!(t >= now + lookahead, "arrival {t} < {now} + {lookahead}");
        }
        // Local deliveries are the constant the parallel backend predicts.
        for m in 0..4 {
            assert_eq!(f.send(1000, m, m, 123), 1000 + f.local_latency(m));
        }
    }

    #[test]
    fn local_batch_accounts_like_individual_sends() {
        use chaos_runtime::Network as _;
        let mut a = fabric(2);
        let mut b = fabric(2);
        let t1 = a.send(50, 1, 1, 300);
        let t2 = a.send(50, 1, 1, 700);
        let t3 = a.send(50, 1, 1, 0);
        let tb = b.send_local_batch(50, 1, 1000, 3);
        // Same arrival (local delivery is state- and size-independent)
        // and identical fabric statistics.
        assert_eq!(tb, t3);
        assert_eq!(t1, t2);
        assert_eq!(a.stats(), b.stats());
        // The calendar-queue hint is the smaller latency constant.
        assert_eq!(a.time_quantum(), MICROS);
    }

    #[test]
    fn throughput_accounting() {
        let mut f = fabric(2);
        f.send(0, 0, 1, 500 * MIB);
        let thr = f.aggregate_remote_throughput(chaos_sim::SECS);
        assert!((thr - (500 * MIB) as f64).abs() < 1.0);
    }
}
