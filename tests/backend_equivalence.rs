//! Execution-backend equivalence: the parallel executor must reproduce
//! sequential runs bit for bit — same final vertex states *and* the same
//! simulated completion time, event count and device/fabric statistics.
//!
//! This is the determinism contract of `chaos_runtime::parallel` pinned
//! against the full engine: conservative window synchronization plus
//! ordered replay means thread count and OS scheduling must never leak
//! into any simulated quantity.

mod common;

use chaos::prelude::*;
use common::{directed_graph, test_config, undirected_graph, weighted_graph};
use proptest::prelude::*;

/// Whether the run had enough lanes and threads for windowed dispatch
/// (one machine or one thread degrades to a sequential drain).
fn cfg_machines_allow_windows(rep: &RunReport, threads: usize) -> bool {
    rep.breakdowns.len() >= 2 && threads >= 2
}

/// Runs `program` under both backends and asserts bit-identical results.
fn assert_equivalent<P: GasProgram>(mut cfg: ChaosConfig, threads: usize, program: P, g: &InputGraph)
where
    P::VertexState: std::fmt::Debug + PartialEq,
{
    cfg.backend = Backend::Sequential;
    let (rep_seq, states_seq) = run_chaos(cfg.clone(), program.clone(), g);
    cfg.backend = Backend::Parallel { threads };
    let (rep_par, states_par) = run_chaos(cfg, program, g);
    assert_eq!(states_seq, states_par, "final vertex states must match");
    assert_eq!(
        rep_seq.runtime, rep_par.runtime,
        "simulated completion time must match"
    );
    assert_eq!(rep_par.backend, Backend::Parallel { threads });
    if cfg_machines_allow_windows(&rep_par, threads) {
        assert!(
            rep_par.windows > 0,
            "windowed parallel path must actually engage"
        );
    }
    assert_eq!(
        rep_seq.clone().normalized(),
        rep_par.clone().normalized(),
        "whole report must match after clearing provenance"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_configs_run_identically_on_both_backends(
        machines in 1usize..5,
        threads in 2usize..5,
        pick in 0usize..4,
        scale in 6u32..8,
        chunk_kb in 4u64..17,
        window in 2usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = test_config(machines);
        cfg.chunk_bytes = chunk_kb * 1024;
        cfg.batch_window = window;
        cfg.seed = seed;
        cfg.backend = Backend::Sequential;
        let (rep_seq, rep_par) = match pick {
            0 => {
                let g = directed_graph(scale);
                let run = |c: ChaosConfig| run_chaos(c, Pagerank::new(3), &g);
                let s = run(cfg.clone());
                cfg.backend = Backend::Parallel { threads };
                let p = run(cfg);
                prop_assert_eq!(s.1, p.1);
                (s.0, p.0)
            }
            1 => {
                let g = undirected_graph(scale);
                let run = |c: ChaosConfig| run_chaos(c, Wcc::new(), &g);
                let s = run(cfg.clone());
                cfg.backend = Backend::Parallel { threads };
                let p = run(cfg);
                prop_assert_eq!(s.1, p.1);
                (s.0, p.0)
            }
            2 => {
                let g = undirected_graph(scale);
                let run = |c: ChaosConfig| run_chaos(c, Bfs::new(0), &g);
                let s = run(cfg.clone());
                cfg.backend = Backend::Parallel { threads };
                let p = run(cfg);
                prop_assert_eq!(s.1, p.1);
                (s.0, p.0)
            }
            _ => {
                let g = directed_graph(scale);
                let run = |c: ChaosConfig| run_chaos(c, Spmv::new(2), &g);
                let s = run(cfg.clone());
                cfg.backend = Backend::Parallel { threads };
                let p = run(cfg);
                prop_assert_eq!(s.1, p.1);
                (s.0, p.0)
            }
        };
        prop_assert_eq!(rep_seq.runtime, rep_par.runtime);
        prop_assert_eq!(rep_seq.events, rep_par.events);
        prop_assert_eq!(rep_seq.normalized(), rep_par.normalized());
    }
}

#[test]
fn failure_recovery_is_backend_invariant() {
    // The abort/restore cycle exercises generation bumps, stale-message
    // filtering and the 30-second reboot self-event — the paths most
    // sensitive to event ordering.
    let g = undirected_graph(8);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    cfg.faults = FaultPlan::crash(1, 1, chaos::sim::SECS);
    assert_equivalent(cfg, 3, Wcc::new(), &g);
}

#[test]
fn centralized_directory_is_backend_invariant() {
    // The Figure 15 strawman routes every chunk operation through the
    // machine-0 directory actor: maximal cross-machine traffic into one
    // lane.
    let g = directed_graph(8);
    let mut cfg = test_config(4);
    cfg.placement = Placement::Centralized;
    assert_equivalent(cfg, 4, Pagerank::new(3), &g);
}

#[test]
fn local_placement_and_stealing_are_backend_invariant() {
    // Locality-seeking placement plus aggressive stealing maximizes the
    // master/stealer accumulator exchange.
    let g = weighted_graph(600, 900, 42);
    let mut cfg = test_config(3);
    cfg.placement = Placement::LocalOnly;
    cfg.steal_alpha = f64::INFINITY;
    assert_equivalent(cfg, 2, Sssp::new(0), &g);
}

#[test]
fn oversubscribed_threads_are_harmless() {
    // More threads than machines: the pool clamps and results still match.
    let g = directed_graph(7);
    assert_equivalent(test_config(2), 16, Pagerank::new(2), &g);
}
