//! Qualitative shape assertions: the paper's headline claims must hold on
//! the simulated cluster at test scale. These pin the *direction and rough
//! magnitude* of every major evaluation result so a regression in the cost
//! model or the protocol shows up as a test failure, not just a changed
//! figure.

mod common;

use chaos::prelude::*;
use common::directed_graph;

fn sized_config(machines: usize) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(machines);
    cfg.chunk_bytes = 32 * 1024;
    cfg.mem_budget = 256 * 1024;
    cfg
}

#[test]
fn strong_scaling_gives_real_speedup() {
    let g = directed_graph(13);
    let (t1, _) = run_chaos(sized_config(1), Pagerank::new(4), &g);
    let (t8, _) = run_chaos(sized_config(8), Pagerank::new(4), &g);
    let speedup = t1.runtime as f64 / t8.runtime as f64;
    assert!(speedup > 2.5, "8 machines speedup {speedup:.2} (paper: near-linear region)");
}

#[test]
fn weak_scaling_stays_bounded() {
    // Paper: 32x the problem on 32 machines costs 1.61x on average; at our
    // scaled size the factor at 8 machines must stay well under 2.5.
    let (t1, _) = run_chaos(
        sized_config(1),
        Pagerank::new(4),
        &directed_graph(12),
    );
    let (t8, _) = run_chaos(
        sized_config(8),
        Pagerank::new(4),
        &directed_graph(15),
    );
    let factor = t8.runtime as f64 / t1.runtime as f64;
    assert!(factor < 2.5, "weak-scaling factor {factor:.2}");
}

#[test]
fn hdd_costs_about_the_bandwidth_ratio() {
    let g = directed_graph(13);
    let (ssd, _) = run_chaos(sized_config(4), Pagerank::new(3), &g);
    let (hdd, _) = run_chaos(sized_config(4).with_hdd(), Pagerank::new(3), &g);
    let ratio = hdd.runtime as f64 / ssd.runtime as f64;
    assert!(
        (1.4..3.2).contains(&ratio),
        "HDD/SSD ratio {ratio:.2}, paper ~2 (inverse bandwidth)"
    );
}

#[test]
fn slow_network_collapses_scaling() {
    let g = directed_graph(13);
    let (fast, _) = run_chaos(sized_config(8), Pagerank::new(3), &g);
    let (slow, _) = run_chaos(sized_config(8).with_one_gige(), Pagerank::new(3), &g);
    let ratio = slow.runtime as f64 / fast.runtime as f64;
    assert!(
        ratio > 2.0,
        "1GigE should bottleneck an 8-machine run (ratio {ratio:.2})"
    );
    // But a single machine barely cares (everything is local).
    let (fast1, _) = run_chaos(sized_config(1), Pagerank::new(3), &g);
    let (slow1, _) = run_chaos(sized_config(1).with_one_gige(), Pagerank::new(3), &g);
    let ratio1 = slow1.runtime as f64 / fast1.runtime as f64;
    assert!(ratio1 < 1.2, "single machine ratio {ratio1:.2}");
}

#[test]
fn aggregate_bandwidth_scales_with_machines() {
    // Figure 14: aggregate achieved bandwidth grows near-linearly under
    // weak scaling.
    let (r1, _) = run_chaos(sized_config(1), Pagerank::new(3), &directed_graph(12));
    let (r8, _) = run_chaos(sized_config(8), Pagerank::new(3), &directed_graph(15));
    let ratio = r8.aggregate_bandwidth() / r1.aggregate_bandwidth();
    assert!(
        ratio > 4.0,
        "8 machines should deliver >4x the aggregate bandwidth (got {ratio:.1}x)"
    );
}

#[test]
fn oversubscribed_window_is_correct_and_no_faster() {
    let g = directed_graph(12);
    let oracle = chaos::graph::reference::pagerank(&g, 3);
    let mut cfg = sized_config(4);
    cfg.batch_window = 32; // window far above the machine count
    let (rep, states) = run_chaos(cfg, Pagerank::new(3), &g);
    for (got, want) in states.iter().zip(oracle.iter()) {
        assert!(((got.0 as f64 - want) / want.max(1.0)).abs() < 1e-3);
    }
    let (rep10, _) = {
        let mut c = sized_config(4);
        c.batch_window = 10;
        run_chaos(c, Pagerank::new(3), &g)
    };
    // Past the sweet spot the window must not help (paper: it slowly hurts).
    assert!(rep.runtime as f64 >= 0.95 * rep10.runtime as f64);
}

#[test]
fn webgraph_end_to_end() {
    let g = chaos::graph::WebGraphConfig::scaled(4096).generate();
    let und = g.to_undirected();
    let (_, levels) = run_chaos(sized_config(4), Bfs::new(0), &und);
    let oracle = chaos::graph::reference::bfs_levels(&und, 0);
    for (got, want) in levels.iter().zip(oracle.iter()) {
        let want = if *want == chaos::graph::reference::UNREACHED {
            u32::MAX
        } else {
            *want
        };
        assert_eq!(*got, want);
    }
}

#[test]
fn preprocessing_is_a_small_fraction_of_multi_iteration_runs() {
    // §3: pre-processing is one pass over the edge list; for a 5-iteration
    // Pagerank it must be well under half the total runtime.
    let g = directed_graph(13);
    let (rep, _) = run_chaos(sized_config(4), Pagerank::new(5), &g);
    let frac = rep.preprocess_time as f64 / rep.runtime as f64;
    assert!(
        (0.02..0.45).contains(&frac),
        "preprocess fraction {frac:.2}"
    );
}

#[test]
fn spill_checkpoint_failure_compose() {
    // The file backend, checkpointing and failure recovery interact: run
    // all three together.
    let g = directed_graph(9);
    let scratch = chaos::storage::ScratchDir::new("chaos-compose").expect("scratch");
    let mut cfg = sized_config(3);
    cfg.checkpoint = true;
    let (_, clean) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    cfg.faults = FaultPlan::crash(1, 2, 0);
    let (_, recovered) = run_chaos(cfg, Pagerank::new(4), &g);
    assert_eq!(clean, recovered);
}
