//! End-to-end correctness: every Table 1 algorithm, run on the full
//! distributed engine at several cluster sizes, must match its independent
//! oracle from `chaos_graph::reference`.

mod common;

use chaos::graph::reference;
use chaos::prelude::*;
use common::{close, directed_graph, test_config, undirected_graph, weighted_graph};

const MACHINES: [usize; 3] = [1, 3, 8];

#[test]
fn bfs_matches_oracle() {
    let g = undirected_graph(9);
    let oracle = reference::bfs_levels(&g, 0);
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), Bfs::new(0), &g);
        for (v, (got, want)) in states.iter().zip(oracle.iter()).enumerate() {
            let want = if *want == reference::UNREACHED {
                u32::MAX
            } else {
                *want
            };
            assert_eq!(*got, want, "m={m} vertex {v}");
        }
    }
}

#[test]
fn wcc_matches_oracle() {
    let g = undirected_graph(9);
    let oracle = reference::weakly_connected_components(&g);
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), Wcc::new(), &g);
        let got: Vec<u64> = states.iter().map(|s| s.0).collect();
        assert_eq!(got, oracle, "m={m}");
    }
}

#[test]
fn sssp_matches_dijkstra() {
    let g = weighted_graph(1000, 4000, 7);
    let oracle = reference::dijkstra(&g, 0);
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), Sssp::new(0), &g);
        for (v, (got, want)) in states.iter().zip(oracle.iter()).enumerate() {
            if want.is_infinite() {
                assert!(got.0.is_infinite(), "m={m} v{v}");
            } else {
                assert!(
                    close(got.0 as f64, *want as f64, 1e-4),
                    "m={m} v{v}: {} vs {want}",
                    got.0
                );
            }
        }
    }
}

#[test]
fn mcst_matches_kruskal() {
    let g = weighted_graph(600, 2500, 3);
    let want = reference::minimum_spanning_forest_weight(&g);
    for m in MACHINES {
        let (report, _) = run_chaos(test_config(m), Mcst::new(), &g);
        let got = Mcst::total_weight(&report.iteration_aggs);
        assert!(close(got, want, 1e-4), "m={m}: {got} vs {want}");
    }
}

#[test]
fn mis_matches_luby_exactly() {
    let g = undirected_graph(8);
    let seed = 0xC0FFEE;
    let oracle = reference::luby_mis(&g, seed);
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), Mis::new(seed), &g);
        let got: Vec<bool> = states
            .iter()
            .map(|s| s.0 == chaos::algos::mis::IN)
            .collect();
        assert!(reference::is_maximal_independent_set(&g, &got), "m={m}");
        assert_eq!(got, oracle, "m={m}");
    }
}

#[test]
fn pagerank_matches_oracle() {
    let g = directed_graph(9);
    let oracle = reference::pagerank(&g, 5);
    for m in MACHINES {
        let (report, states) = run_chaos(test_config(m), Pagerank::new(5), &g);
        assert_eq!(report.iterations, 5);
        for (v, (got, want)) in states.iter().zip(oracle.iter()).enumerate() {
            assert!(close(got.0 as f64, *want, 1e-3), "m={m} v{v}");
        }
    }
}

#[test]
fn scc_matches_tarjan() {
    let g = directed_graph(8);
    let want = chaos::algos::scc::normalize_partition(
        &reference::strongly_connected_components(&g),
    );
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), Scc::new(), &g);
        let got: Vec<u64> = states.iter().map(|s| s.1).collect();
        assert_eq!(chaos::algos::scc::normalize_partition(&got), want, "m={m}");
    }
}

#[test]
fn conductance_matches_count_exactly() {
    let g = directed_graph(9);
    let seed = 0xFACE;
    let want =
        reference::conductance_counts(&g, |v| chaos::algos::conductance::in_set(v, seed));
    for m in MACHINES {
        let (report, _) = run_chaos(test_config(m), Conductance::new(seed), &g);
        let got = Conductance::counts(report.iteration_aggs.last().expect("one iteration"));
        assert_eq!(got, want, "m={m}");
    }
}

#[test]
fn spmv_matches_oracle() {
    let g = chaos::graph::builder::gnm(800, 6000, true, 11);
    let seed = 42;
    let x: Vec<f64> = (0..g.num_vertices)
        .map(|v| chaos::algos::spmv::input_entry(v, seed))
        .collect();
    let want = reference::spmv(&g, &x);
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), Spmv::new(seed), &g);
        for (v, (got, w)) in states.iter().zip(want.iter()).enumerate() {
            assert!(close(got.1 as f64, *w, 1e-3), "m={m} v{v}");
        }
    }
}

#[test]
fn bp_matches_oracle() {
    let g = directed_graph(8);
    let seed = 9;
    let want = reference::belief_propagation(&g, seed, 4);
    for m in MACHINES {
        let (_, states) = run_chaos(test_config(m), BeliefPropagation::new(seed, 4), &g);
        for (v, (got, w)) in states.iter().zip(want.iter()).enumerate() {
            assert!((got - w).abs() < 1e-6, "m={m} v{v}: {got} vs {w}");
        }
    }
}

#[test]
fn all_ten_run_via_dispatch_macro() {
    use chaos::algos::with_algo;
    let params = AlgoParams::default();
    for name in ALGO_NAMES {
        let needs_u = chaos::algos::needs_undirected(name);
        let needs_w = chaos::algos::needs_weights(name);
        let g = if needs_w {
            let g = weighted_graph(256, 1000, 5);
            if needs_u {
                g
            } else {
                chaos::graph::builder::gnm(256, 2000, true, 5)
            }
        } else if needs_u {
            undirected_graph(7)
        } else {
            directed_graph(7)
        };
        let report = with_algo!(name, &params, |p| run_chaos(test_config(3), p, &g).0);
        assert!(report.iterations > 0, "{name} ran no iterations");
        assert!(report.runtime > 0, "{name} took no time");
    }
}
