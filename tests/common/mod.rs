//! Shared helpers for the cross-crate integration tests.
//!
//! Each integration-test binary compiles this module separately and uses
//! only a subset of the helpers, so per-binary dead-code analysis is noise.
#![allow(dead_code)]

use chaos::prelude::*;

/// A small cluster config tuned for test graphs: small chunks and a small
/// memory budget so even tiny graphs exercise multiple partitions, windows
/// and steals.
pub fn test_config(machines: usize) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(machines);
    cfg.chunk_bytes = 16 * 1024;
    cfg.mem_budget = 16 * 1024;
    cfg
}

/// Relative-tolerance float comparison.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * b.abs().max(1.0)
}

/// Directed test graph: RMAT plus a sprinkle of extra randomness.
pub fn directed_graph(scale: u32) -> InputGraph {
    RmatConfig::paper(scale).generate()
}

/// Undirected expansion for the first five Table 1 algorithms.
pub fn undirected_graph(scale: u32) -> InputGraph {
    RmatConfig::paper(scale).generate().to_undirected()
}

/// Weighted undirected graph with distinct weights (MCST, SSSP).
pub fn weighted_graph(n: u64, extra: u64, seed: u64) -> InputGraph {
    chaos::graph::builder::connected_weighted(n, extra, seed)
}
