//! Checkpointing and transient-failure recovery (§6.6).

mod common;

use chaos::prelude::*;
use common::{directed_graph, test_config};

#[test]
fn checkpoint_overhead_is_small() {
    let g = directed_graph(11);
    let mut cfg = test_config(4);
    cfg.mem_budget = 1 << 30;
    let (bare, _) = run_chaos(cfg.clone(), Pagerank::new(5), &g);
    cfg.checkpoint = true;
    let (ck, _) = run_chaos(cfg, Pagerank::new(5), &g);
    let overhead = ck.runtime as f64 / bare.runtime as f64 - 1.0;
    assert!(overhead >= 0.0);
    assert!(overhead < 0.15, "checkpoint overhead {overhead:.3} too high");
}

#[test]
fn checkpoint_content_matches_final_state_after_completion() {
    let g = directed_graph(9);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    let mut cluster = Cluster::new(cfg, Pagerank::new(3), &g).expect("valid");
    let _ = cluster.run();
    // The last committed checkpoint was taken at the final gather barrier,
    // so it equals the final state.
    assert_eq!(cluster.final_states(), cluster.checkpoint_states());
}

#[test]
fn recovery_reproduces_failure_free_results_exactly() {
    let g = directed_graph(10);
    for fail_iter in [1u32, 3] {
        let mut cfg = test_config(5);
        cfg.checkpoint = true;
        let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
        cfg.failure = Some(FailureSpec {
            machine: 2,
            iteration: fail_iter,
            downtime: 0,
        });
        let (failed, failed_states) = run_chaos(cfg, Pagerank::new(4), &g);
        assert_eq!(
            clean_states, failed_states,
            "iter {fail_iter}: recovery must be exact"
        );
        assert!(
            failed.runtime > clean.runtime,
            "redoing an iteration plus reboot takes longer"
        );
        // The reboot delay (30 simulated seconds) dominates the difference.
        assert!(failed.runtime - clean.runtime >= 30 * chaos::sim::SECS);
    }
}

#[test]
fn recovery_works_for_convergence_driven_algorithms() {
    // BFS converges by aggregate, exercising end_iteration replay across
    // the abort path.
    let g = directed_graph(9).to_undirected();
    let mut cfg = test_config(4);
    cfg.checkpoint = true;
    let (_, clean) = run_chaos(cfg.clone(), Bfs::new(0), &g);
    cfg.failure = Some(FailureSpec {
        machine: 0,
        iteration: 2,
        downtime: 0,
    });
    let (_, failed) = run_chaos(cfg, Bfs::new(0), &g);
    assert_eq!(clean, failed);
}

#[test]
fn failure_requires_checkpointing() {
    let mut cfg = test_config(2);
    cfg.failure = Some(FailureSpec {
        machine: 0,
        iteration: 1,
        downtime: 0,
    });
    assert!(cfg.validate().is_err());
}
