//! Checkpointing and transient-failure recovery (§6.6).
//!
//! The scripted single-crash shapes live here, together with the directed
//! edge cases of the fault-plan protocol: crashes during the
//! checkpoint-commit round, two machines failing in the same iteration,
//! and a second crash landing while a prior abort is still in flight.
//! Randomized multi-fault schedules are soaked in `chaos_soak.rs`.

mod common;

use chaos::core::msg::PhaseKind;
use chaos::prelude::*;
use chaos::sim::SECS;
use common::{directed_graph, test_config};

#[test]
fn checkpoint_overhead_is_small() {
    let g = directed_graph(11);
    let mut cfg = test_config(4);
    cfg.mem_budget = 1 << 30;
    let (bare, _) = run_chaos(cfg.clone(), Pagerank::new(5), &g);
    cfg.checkpoint = true;
    let (ck, _) = run_chaos(cfg, Pagerank::new(5), &g);
    let overhead = ck.runtime as f64 / bare.runtime as f64 - 1.0;
    assert!(overhead >= 0.0);
    assert!(overhead < 0.15, "checkpoint overhead {overhead:.3} too high");
    assert!(ck.faults.checkpoint_bytes > 0);
    assert!(ck.faults.checkpoint_time > 0);
    assert_eq!(bare.faults.checkpoint_bytes, 0);
}

#[test]
fn checkpoint_content_matches_final_state_after_completion() {
    let g = directed_graph(9);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    let mut cluster = Cluster::new(cfg, Pagerank::new(3), &g).expect("valid");
    let _ = cluster.run();
    // The last committed checkpoint was taken at the final gather barrier,
    // so it equals the final state.
    assert_eq!(cluster.final_states(), cluster.checkpoint_states());
}

#[test]
fn recovery_reproduces_failure_free_results_exactly() {
    let g = directed_graph(10);
    for fail_iter in [1u32, 3] {
        let mut cfg = test_config(5);
        cfg.checkpoint = true;
        let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
        cfg.faults = FaultPlan::crash(2, fail_iter, 30 * SECS);
        let (failed, failed_states) = run_chaos(cfg, Pagerank::new(4), &g);
        assert_eq!(
            clean_states, failed_states,
            "iter {fail_iter}: recovery must be exact"
        );
        assert!(
            failed.runtime > clean.runtime,
            "redoing an iteration plus reboot takes longer"
        );
        assert!(failed.runtime - clean.runtime >= 30 * SECS);
        assert_eq!(failed.faults.aborts, 1);
        assert_eq!(failed.faults.iterations_redone, 1);
        assert_eq!(clean.faults.aborts, 0);
    }
}

#[test]
fn configured_downtime_shifts_the_runtime_by_its_delta() {
    // Regression: `downtime` used to be silently ignored (the coordinator
    // hardcoded a 30 s reboot). Two otherwise identical runs whose only
    // difference is the configured downtime must differ by that delta.
    let g = directed_graph(9);
    let base = {
        let mut cfg = test_config(3);
        cfg.checkpoint = true;
        cfg
    };
    let mut fast = base.clone();
    fast.faults = FaultPlan::crash(1, 2, 0);
    let (quick, quick_states) = run_chaos(fast, Pagerank::new(4), &g);
    let mut slow_cfg = base;
    slow_cfg.faults = FaultPlan::crash(1, 2, 120 * SECS);
    let (slow, slow_states) = run_chaos(slow_cfg, Pagerank::new(4), &g);
    assert_eq!(quick_states, slow_states);
    let delta = slow.runtime - quick.runtime;
    let want = 120 * SECS;
    assert!(
        delta >= want - SECS / 2 && delta <= want + SECS / 2,
        "120 s of configured downtime must surface in the runtime, got {delta} ns"
    );
}

#[test]
fn recovery_works_for_convergence_driven_algorithms() {
    // BFS converges by aggregate, exercising end_iteration replay across
    // the abort path.
    let g = directed_graph(9).to_undirected();
    let mut cfg = test_config(4);
    cfg.checkpoint = true;
    let (_, clean) = run_chaos(cfg.clone(), Bfs::new(0), &g);
    cfg.faults = FaultPlan::crash(0, 2, 0);
    let (_, failed) = run_chaos(cfg, Bfs::new(0), &g);
    assert_eq!(clean, failed);
}

#[test]
fn failure_requires_checkpointing() {
    let mut cfg = test_config(2);
    cfg.faults = FaultPlan::crash(0, 1, 0);
    assert!(cfg.validate().is_err());
}

#[test]
fn crash_during_checkpoint_commit_promotes_the_pending_snapshot() {
    // The crash lands between the coordinator's commit broadcast and the
    // last CheckpointCommitAck. Every machine had already finished its
    // copy phase, so the pending snapshot is globally consistent: recovery
    // finishes the commit and advances — no iteration is redone.
    let g = directed_graph(9);
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        let mut cfg = test_config(3);
        cfg.backend = backend;
        cfg.checkpoint = true;
        let (_, clean) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
        cfg.faults = FaultPlan::none().with_crash(CrashFault {
            machine: 1,
            trigger: CrashTrigger::Commit { iteration: 2 },
            downtime: SECS / 10,
            torn: false,
        });
        let (failed, states) = run_chaos(cfg, Pagerank::new(4), &g);
        assert_eq!(clean, states, "{backend:?}");
        assert_eq!(failed.faults.aborts, 1);
        assert_eq!(
            failed.faults.iterations_redone, 0,
            "a mid-commit crash promotes the snapshot instead of redoing"
        );
    }
}

#[test]
fn two_machines_failing_the_same_iteration_recover_exactly() {
    // Both crashes target iteration 2's scatter barrier. The first fires
    // at the first arrival; after rollback, reboot and redo, the barrier
    // is reached again and the second trigger fires — the same iteration
    // fails twice with strictly increasing generations.
    let g = directed_graph(9);
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        let mut cfg = test_config(3);
        cfg.backend = backend;
        cfg.checkpoint = true;
        let (_, clean) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
        cfg.faults = FaultPlan::none()
            .with_crash(CrashFault {
                machine: 0,
                trigger: CrashTrigger::Iteration {
                    iteration: 2,
                    phase: PhaseKind::Scatter,
                },
                downtime: 0,
                torn: false,
            })
            .with_crash(CrashFault {
                machine: 1,
                trigger: CrashTrigger::Iteration {
                    iteration: 2,
                    phase: PhaseKind::Scatter,
                },
                downtime: SECS / 20,
                torn: false,
            });
        let (failed, states) = run_chaos(cfg, Pagerank::new(4), &g);
        assert_eq!(clean, states, "{backend:?}");
        assert_eq!(failed.faults.aborts, 2);
        assert_eq!(failed.faults.iterations_redone, 2);
        assert!(failed.faults.abort_log[1].gen > failed.faults.abort_log[0].gen);
    }
}

#[test]
fn crash_during_abort_collection_composes_recoveries() {
    // A second crash lands while the cluster is still recovering from the
    // first (AbortAcks outstanding / reboot pending). The coordinator must
    // re-send the abort under a newer generation and keep the original
    // resume decision; stale acks of the dead generation are dropped by
    // the dispatch filter.
    let g = directed_graph(9);
    let downtime = SECS / 5;
    // Learn when the first abort happens from a scout run...
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    let (_, clean) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    cfg.faults = FaultPlan::crash(1, 2, downtime);
    let (scout, _) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    assert_eq!(scout.faults.aborts, 1);
    let t_abort = scout.faults.abort_log[0].time;
    // ...then schedule a time-triggered crash just inside its recovery
    // window, on both backends.
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        let mut cfg2 = cfg.clone();
        cfg2.backend = backend;
        cfg2.faults = cfg2.faults.with_crash(CrashFault {
            machine: 2,
            trigger: CrashTrigger::Time(t_abort + SECS / 1000),
            downtime,
            torn: false,
        });
        let (failed, states) = run_chaos(cfg2, Pagerank::new(4), &g);
        assert_eq!(clean, states, "{backend:?}");
        assert_eq!(failed.faults.aborts, 2, "{backend:?}");
        let log = &failed.faults.abort_log;
        assert!(log[1].gen > log[0].gen, "generations strictly increase");
        assert!(
            log[1].time > log[0].time && log[1].time < log[0].time + downtime,
            "second crash must land inside the first recovery window"
        );
        // One interrupted iteration, resumed once: the redo happens once
        // even though the abort was broadcast twice.
        assert_eq!(failed.faults.iterations_redone, 1, "{backend:?}");
    }
}

#[test]
fn device_and_fabric_faults_delay_but_do_not_corrupt() {
    // A read+write fault burst over pre-processing plus a straggler NIC
    // window: the run slows down, the retries are accounted, and the
    // final states match the fault-free run bit for bit.
    let g = directed_graph(9);
    let mut cfg = test_config(3);
    let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    cfg.faults = FaultPlan::none()
        .with_device_fault(DeviceFault {
            machine: 0,
            from: 0,
            until: SECS / 20,
            reads: true,
            writes: true,
        })
        .with_fabric_fault(FabricFault {
            machine: 1,
            from: 0,
            until: SECS / 10,
            extra: 200 * chaos::sim::MICROS,
        });
    let (faulted, states) = run_chaos(cfg, Pagerank::new(4), &g);
    assert_eq!(clean_states, states);
    assert!(faulted.faults.device_retries > 0, "the burst must be hit");
    assert!(faulted.faults.faulted_time > 0);
    assert!(faulted.runtime > clean.runtime);
    assert_eq!(faulted.faults.aborts, 0);
}
