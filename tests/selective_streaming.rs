//! Selective streaming ≡ dense streaming.
//!
//! Two separate equivalences are pinned here:
//!
//! 1. **Selective ≡ Reference, bit for bit.** `Streaming::Selective`
//!    (skip without reading) and `Streaming::Reference` (read anyway,
//!    stream through the kernels, panic if anything comes out) must make
//!    identical simulated decisions: the whole [`RunReport`] — runtime,
//!    iteration aggregates, device/fabric statistics, selectivity account
//!    — compares equal, on both execution backends. This is the fidelity
//!    argument for the skip path: the reference mode *proves* every
//!    skipped chunk was a no-op while accounting exactly like the skip.
//!
//! 2. **Selective ≡ Dense in results.** With the activity machinery off
//!    (`Streaming::Dense`, the paper's full-stream behavior) the final
//!    vertex states, per-iteration aggregates and iteration count must
//!    be unchanged — selective streaming and shrinking-graph compaction
//!    never alter what is computed, only how much is moved to compute it.

mod common;

use chaos::prelude::*;
use common::{test_config, undirected_graph, weighted_graph};
use proptest::prelude::*;

/// Pins both equivalences for one (config, program, graph) cell.
fn assert_streaming_equivalent<P: GasProgram>(cfg: ChaosConfig, program: P, g: &InputGraph)
where
    P::VertexState: PartialEq + std::fmt::Debug,
{
    let run = |mode: Streaming| {
        let mut c = cfg.clone();
        c.streaming = mode;
        run_chaos(c, program.clone(), g)
    };
    let (rep_sel, states_sel) = run(Streaming::Selective);
    let (rep_ref, states_ref) = run(Streaming::Reference);
    assert_eq!(states_sel, states_ref, "final states: selective vs reference");
    assert_eq!(
        rep_sel, rep_ref,
        "whole run report must be bit-identical: skipping without reading \
         vs reading-and-verifying must account identically"
    );
    let (rep_dense, states_dense) = run(Streaming::Dense);
    assert_eq!(states_sel, states_dense, "final states: selective vs dense");
    assert_eq!(
        rep_sel.iteration_aggs, rep_dense.iteration_aggs,
        "selective streaming must not change what is computed"
    );
    assert_eq!(rep_sel.iterations, rep_dense.iterations);
    // The parallel backend carries activity state through its windows
    // deterministically: same report modulo backend provenance.
    let mut par = cfg.clone();
    par.backend = Backend::Parallel { threads: 2 };
    let (rep_par, states_par) = run_chaos(par, program.clone(), g);
    assert_eq!(states_sel, states_par, "final states: seq vs par");
    assert_eq!(
        rep_sel.clone().normalized(),
        rep_par.normalized(),
        "selective streaming must stay backend-invariant"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_runs_are_streaming_invariant(
        machines in 1usize..5,
        pick in 0usize..10,
        scale in 6u32..8,
        chunk_kb in 4u64..17,
        window in 2usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = test_config(machines);
        cfg.chunk_bytes = chunk_kb * 1024;
        cfg.batch_window = window;
        cfg.seed = seed;
        let g_dir = RmatConfig::paper(scale).generate();
        let g_und = undirected_graph(scale);
        let g_w = weighted_graph(300, 450, seed);
        match pick {
            0 => assert_streaming_equivalent(cfg, Bfs::new(0), &g_und),
            1 => assert_streaming_equivalent(cfg, Wcc::new(), &g_und),
            2 => assert_streaming_equivalent(cfg, Mcst::new(), &g_w),
            3 => assert_streaming_equivalent(cfg, Mis::new(seed), &g_und),
            4 => assert_streaming_equivalent(cfg, Sssp::new(0), &g_w),
            5 => assert_streaming_equivalent(cfg, Scc::new(), &g_dir),
            6 => assert_streaming_equivalent(cfg, Pagerank::new(3), &g_dir),
            7 => assert_streaming_equivalent(cfg, Conductance::new(seed), &g_dir),
            8 => assert_streaming_equivalent(cfg, Spmv::new(2), &g_dir),
            _ => assert_streaming_equivalent(cfg, BeliefPropagation::new(seed, 3), &g_dir),
        }
    }
}

#[test]
fn mcst_phase_switching_is_streaming_invariant() {
    // MCST exercises everything at once: per-phase activity (including
    // the all-inactive Commit iterations), the delta-gated fixpoint
    // wavefronts, and Shrinking tombstoning across many Borůvka rounds.
    let g = weighted_graph(300, 450, 11);
    assert_streaming_equivalent(test_config(3), Mcst::new(), &g);
}

#[test]
fn stealing_is_streaming_invariant() {
    // Aggressive stealing: stolen partitions build their own (identical)
    // active sets, and compaction replacements can originate from
    // non-master machines — each chunk still has exactly one consumer
    // per epoch.
    let mut cfg = test_config(3);
    cfg.steal_alpha = f64::INFINITY;
    assert_streaming_equivalent(cfg, Mis::new(7), &undirected_graph(7));
    let mut cfg = test_config(3);
    cfg.steal_alpha = f64::INFINITY;
    assert_streaming_equivalent(cfg, Mcst::new(), &weighted_graph(400, 600, 42));
}

#[test]
fn local_only_placement_is_streaming_invariant() {
    let mut cfg = test_config(4);
    cfg.placement = Placement::LocalOnly;
    assert_streaming_equivalent(cfg, Bfs::new(0), &undirected_graph(7));
}

#[test]
fn spill_path_under_memory_pressure_is_streaming_invariant() {
    // Real files, a vertex memory budget forcing many partitions, and a
    // starved page cache: chunk skips must skip the *file* read and
    // compaction must rewrite the backing file, with identical simulated
    // accounting to the dense-reference oracle.
    let dir = chaos::storage::ScratchDir::new("chaos-selective-spill").expect("scratch dir");
    let mut cfg = test_config(2);
    cfg.mem_budget = 4 * 1024;
    cfg.pagecache_bytes = 1024;
    cfg.spill_dir = Some(dir.path().to_path_buf());
    assert_streaming_equivalent(cfg, Mcst::new(), &weighted_graph(250, 350, 5));
    let mut cfg2 = test_config(2);
    cfg2.mem_budget = 4 * 1024;
    cfg2.pagecache_bytes = 1024;
    cfg2.spill_dir = Some(dir.path().to_path_buf());
    assert_streaming_equivalent(cfg2, Bfs::new(0), &undirected_graph(7));
}

#[test]
fn selectivity_account_reports_real_skips() {
    // BFS on a path graph: the frontier is a single vertex per
    // iteration, so late iterations must skip chunks, and the active
    // fraction must collapse toward zero.
    let g = chaos::graph::builder::path(600).to_undirected();
    let mut cfg = test_config(2);
    cfg.mem_budget = 2 * 1024; // many partitions, most of them frontier-free
    let (rep, _) = run_chaos(cfg, Bfs::new(0), &g);
    assert!(rep.chunks_skipped() > 0, "a collapsing frontier must skip chunks");
    assert!(rep.records_skipped() > 0);
    let last = rep.selectivity.last().expect("iterations ran");
    assert!(
        last.active_fraction() < 0.05,
        "final frontier is a sliver: {}",
        last.active_fraction()
    );
}

#[test]
fn shrinking_compaction_reports_tombstones() {
    // MIS decides every vertex; by the last rounds the whole edge set is
    // dead and compaction must have dropped most of it. Block-granular
    // serving suppresses compaction of partially served chunks (a partial
    // payload must not seed a rewrite), leaving dead regions to the block
    // index instead — pin chunk-granularity serves to exercise the full
    // compaction path.
    let g = undirected_graph(8);
    let mut cfg = test_config(2);
    cfg.block_records = 0;
    let (rep, _) = run_chaos(cfg, Mis::new(3), &g);
    assert!(rep.compactions() > 0, "MIS must compact decided regions");
    assert!(
        rep.edges_tombstoned() > g.num_edges() / 2,
        "most of the edge set dies: {} of {}",
        rep.edges_tombstoned(),
        g.num_edges()
    );
    // Under block indexing the same dead regions are served around rather
    // than rewritten: compaction still runs on fully served chunks, and
    // the skip account moves intra-chunk.
    let (blocked, _) = run_chaos(test_config(2), Mis::new(3), &g);
    assert!(blocked.compactions() > 0, "full serves still compact");
    assert!(
        blocked.blocks_skipped() > 0,
        "decided regions must skip at block granularity"
    );
    assert!(blocked.records_skipped_intra() > 0);
}

#[test]
fn failure_recovery_does_not_double_count_selectivity() {
    // A transient failure aborts an iteration mid-scatter and redoes it
    // from the checkpoint; the aborted attempt's partial selectivity
    // counts must be discarded, so the account matches a failure-free
    // run of the same computation.
    let g = undirected_graph(7);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    let (clean, states_clean) = run_chaos(cfg.clone(), Bfs::new(0), &g);
    cfg.faults = FaultPlan::crash(1, 2, 0);
    let (faulty, states_faulty) = run_chaos(cfg, Bfs::new(0), &g);
    assert_eq!(states_clean, states_faulty);
    assert_eq!(
        clean.selectivity, faulty.selectivity,
        "the redone iteration's account must replace, not add to, the aborted attempt's"
    );
}

#[test]
fn centralized_placement_stays_dense() {
    // The Figure 15 directory strawman keeps the paper's dense streaming:
    // selective mode must not skip anything there (its per-engine chunk
    // counts cannot see multi-chunk consumption), and results must agree.
    let g = undirected_graph(7);
    let mut cfg = test_config(3);
    cfg.placement = Placement::Centralized;
    let (rep, states) = run_chaos(cfg.clone(), Bfs::new(0), &g);
    assert_eq!(rep.chunks_skipped(), 0);
    assert_eq!(rep.compactions(), 0);
    cfg.streaming = Streaming::Dense;
    let (rep_dense, states_dense) = run_chaos(cfg, Bfs::new(0), &g);
    assert_eq!(states, states_dense);
    assert_eq!(rep.iteration_aggs, rep_dense.iteration_aggs);
}
