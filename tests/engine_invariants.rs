//! Engine-level invariants: determinism, placement equivalence, stealing,
//! batching, conservation.

mod common;

use chaos::graph::reference;
use chaos::prelude::*;
use common::{close, directed_graph, test_config};

#[test]
fn runs_are_deterministic_in_results_and_time() {
    let g = directed_graph(9);
    let run = || run_chaos(test_config(4), Pagerank::new(4), &g);
    let (r1, s1) = run();
    let (r2, s2) = run();
    assert_eq!(r1.runtime, r2.runtime, "simulated time must be reproducible");
    assert_eq!(r1.events, r2.events);
    assert_eq!(s1, s2);
    // A different seed changes the schedule but not the result.
    let mut cfg = test_config(4);
    cfg.seed ^= 0xDEAD;
    let (r3, s3) = run_chaos(cfg, Pagerank::new(4), &g);
    assert_ne!(r1.runtime, r3.runtime, "different schedule");
    for (a, b) in s1.iter().zip(s3.iter()) {
        assert!(close(a.0 as f64, b.0 as f64, 1e-5), "same ranks");
    }
}

#[test]
fn all_placements_agree_on_results() {
    let g = directed_graph(9);
    let oracle = reference::pagerank(&g, 3);
    for placement in [
        Placement::RandomUniform,
        Placement::LocalOnly,
        Placement::Centralized,
    ] {
        let mut cfg = test_config(5);
        cfg.placement = placement;
        let (_, states) = run_chaos(cfg, Pagerank::new(3), &g);
        for (v, (got, want)) in states.iter().zip(oracle.iter()).enumerate() {
            assert!(
                close(got.0 as f64, *want, 1e-3),
                "{placement:?} v{v}: {} vs {want}",
                got.0
            );
        }
    }
}

#[test]
fn centralized_directory_is_slower_at_scale() {
    let g = directed_graph(12);
    let mut rand_cfg = test_config(8);
    rand_cfg.mem_budget = 1 << 30;
    let mut dir_cfg = rand_cfg.clone();
    dir_cfg.placement = Placement::Centralized;
    // Make the directory expensive enough to bite at this scaled-down size
    // (the paper's effect compounds with machine count).
    dir_cfg.directory_op_ns = 100_000;
    let (r_rand, _) = run_chaos(rand_cfg, Pagerank::new(3), &g);
    let (r_dir, _) = run_chaos(dir_cfg, Pagerank::new(3), &g);
    assert!(
        r_dir.runtime > r_rand.runtime,
        "directory {} vs random {}",
        r_dir.runtime,
        r_rand.runtime
    );
}

#[test]
fn stealing_happens_and_alpha_zero_disables_it() {
    // A deliberately imbalanced workload: RMAT's low-id partitions hold
    // most edges, so masters of the sparse partitions finish early and
    // steal from the hub partition's master.
    let g = chaos::graph::RmatConfig::paper_weighted(12)
        .generate()
        .to_undirected();
    let mut cfg = test_config(4);
    cfg.chunk_bytes = 64 * 1024;
    // Several partitions per machine: stealing mostly targets partitions
    // still queued behind a busy master (§5.3).
    cfg.mem_budget = 2 * 1024;
    let (rep, _) = run_chaos(cfg.clone(), Sssp::new(0), &g);
    assert!(rep.steals > 0, "expected steals on an imbalanced run");

    cfg.steal_alpha = 0.0;
    let (rep0, states0) = run_chaos(cfg, Sssp::new(0), &g);
    assert_eq!(rep0.steals, 0, "alpha = 0 must disable stealing");
    // And the result is still right.
    let oracle = reference::dijkstra(&g, 0);
    for (got, want) in states0.iter().zip(oracle.iter()) {
        if want.is_finite() {
            assert!(close(got.0 as f64, *want as f64, 1e-4));
        }
    }
}

#[test]
fn always_steal_still_correct() {
    let g = directed_graph(11);
    let mut cfg = test_config(4);
    cfg.chunk_bytes = 64 * 1024;
    cfg.mem_budget = 2 * 1024;
    cfg.steal_alpha = f64::INFINITY;
    let (rep, states) = run_chaos(cfg, Pagerank::new(3), &g);
    assert!(rep.steals > 0);
    let oracle = reference::pagerank(&g, 3);
    for (got, want) in states.iter().zip(oracle.iter()) {
        assert!(close(got.0 as f64, *want, 1e-3));
    }
}

#[test]
fn batching_window_affects_time_not_results() {
    let g = directed_graph(9);
    let mut times = Vec::new();
    let oracle = reference::pagerank(&g, 3);
    for window in [1usize, 2, 10] {
        let mut cfg = test_config(6);
        cfg.batch_window = window;
        let (rep, states) = run_chaos(cfg, Pagerank::new(3), &g);
        for (got, want) in states.iter().zip(oracle.iter()) {
            assert!(close(got.0 as f64, *want, 1e-3), "window {window}");
        }
        times.push(rep.runtime);
    }
    // A window of 1 leaves devices idle; the paper's sweet spot is faster.
    assert!(
        times[2] < times[0],
        "window 10 ({}) should beat window 1 ({})",
        times[2],
        times[0]
    );
}

#[test]
fn update_bytes_conserved_between_scatter_and_gather() {
    // Every update written is read exactly once: written bytes to update
    // sets equal read bytes (cache hits count as reads via cache_bytes).
    let g = directed_graph(9);
    let mut cfg = test_config(3);
    cfg.pagecache_bytes = 0; // all update traffic hits the device
    let (rep, _) = run_chaos(cfg, Pagerank::new(3), &g);
    let total_updates: u64 = rep.iteration_aggs.iter().map(|a| a.updates_produced).sum();
    assert!(total_updates > 0);
    // Devices moved at least the update traffic both ways.
    let io = rep.total_device_bytes();
    assert!(io > 2 * total_updates * 8);
}

#[test]
fn page_cache_reduces_device_traffic() {
    let g = directed_graph(9);
    let mut cold = test_config(3);
    cold.pagecache_bytes = 0;
    let mut warm = test_config(3);
    warm.pagecache_bytes = 1 << 30; // everything fits
    let (r_cold, _) = run_chaos(cold, Pagerank::new(3), &g);
    let (r_warm, _) = run_chaos(warm, Pagerank::new(3), &g);
    let cold_reads: u64 = r_cold.devices.iter().map(|d| d.bytes_read).sum();
    let warm_reads: u64 = r_warm.devices.iter().map(|d| d.bytes_read).sum();
    assert!(warm_reads < cold_reads, "cache must absorb update reads");
    assert!(r_warm.runtime < r_cold.runtime);
    let hits: u64 = r_warm.devices.iter().map(|d| d.cache_hits).sum();
    assert!(hits > 0);
}

#[test]
fn partition_rule_is_smallest_multiple_of_machines() {
    let g = directed_graph(10); // 1024 vertices
    for m in [1usize, 2, 4] {
        let mut cfg = test_config(m);
        cfg.mem_budget = 2048; // 256 PR vertices of 8 bytes per partition
        let cluster = Cluster::new(cfg, Pagerank::new(1), &g).expect("valid");
        let parts = cluster.params().spec.num_partitions;
        assert_eq!(parts % m, 0, "multiple of machines");
        assert!(1024u64.div_ceil(parts as u64) * 8 <= 2048, "fits budget");
        // One fewer multiple would not fit.
        if parts > m {
            let fewer = parts - m;
            assert!(1024u64.div_ceil(fewer as u64) * 8 > 2048, "smallest multiple");
        }
    }
}

#[test]
fn more_machines_do_not_lose_data() {
    // Weak sanity across many machine counts, including m > partitions'
    // natural fit and m not dividing the vertex count.
    let g = directed_graph(8);
    let oracle = reference::pagerank(&g, 2);
    for m in [2usize, 5, 7, 12] {
        let (_, states) = run_chaos(test_config(m), Pagerank::new(2), &g);
        assert_eq!(states.len() as u64, g.num_vertices);
        for (got, want) in states.iter().zip(oracle.iter()) {
            assert!(close(got.0 as f64, *want, 1e-3), "m={m}");
        }
    }
}

#[test]
fn invalid_configs_are_rejected_by_cluster() {
    let g = directed_graph(6);
    let mut cfg = test_config(2);
    cfg.batch_window = 0;
    assert!(Cluster::new(cfg, Pagerank::new(1), &g).is_err());
    let mut cfg = test_config(2);
    cfg.placement = Placement::Centralized;
    assert!(
        Cluster::new(cfg, Scc::new(), &g).is_err(),
        "centralized + reverse edges unsupported"
    );
}
