//! Chaos-soak recovery harness: randomized multi-fault schedules.
//!
//! For a battery of seeds, [`FaultPlan::generate`] derives a schedule of
//! machine crashes (half of them tearing their in-flight checkpoint
//! write), device-fault windows, fabric stragglers and silent-corruption
//! windows, and the run must end with final vertex states
//! **bit-identical** to the fault-free run of the same
//! `(config, program, graph)` — on the sequential and parallel backends,
//! in selective and reference streaming modes, for an
//! aggregate-converging, a frontier and a stateful multi-phase algorithm.
//!
//! On top of each generated schedule the soak scripts one wide, early
//! corruption window (machine 0, one-in-two reads), so every schedule is
//! guaranteed to exercise the detect–repair ladder — the generated window
//! alone can land on an idle machine or a quiet stretch.
//!
//! Recovery invariants checked on every faulted run:
//! - any schedule with at least one crash records at least one abort and
//!   at least one redone iteration (the generator anchors its first crash
//!   at an early scatter barrier, which always rolls back and redoes);
//! - abort generations strictly increase (no dead-generation events are
//!   ever absorbed — a stale-gen ack or barrier reaching the coordinator
//!   would corrupt the counts and break the state equality asserted here);
//! - the faulted run converges to the same iteration count and aggregates
//!   as the fault-free run.
//!
//! `CHAOS_SOAK_SEEDS` overrides the seed count (default 20).

mod common;

use chaos::prelude::*;
use common::{directed_graph, test_config, undirected_graph, weighted_graph};

fn soak_seeds() -> u64 {
    std::env::var("CHAOS_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
}

/// Runs the full seed battery for one program over one graph, comparing
/// every faulted run against the fault-free baseline of the same config.
fn soak<P>(program: P, graph: &chaos::graph::InputGraph, label: &str)
where
    P: GasProgram,
    P::VertexState: PartialEq + std::fmt::Debug,
{
    let machines = 4;
    let shape = FaultPlanConfig::soak(machines);
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        for streaming in [Streaming::Selective, Streaming::Reference] {
            let mut base = test_config(machines);
            base.backend = backend;
            base.streaming = streaming;
            base.checkpoint = true;
            let (clean, clean_states) = run_chaos(base.clone(), program.clone(), graph);
            assert_eq!(clean.faults.aborts, 0);
            for seed in 0..soak_seeds() {
                let plan = FaultPlan::generate(seed, &shape).with_corruption_fault(
                    CorruptionFault {
                        machine: 0,
                        from: 0,
                        until: chaos::sim::SECS,
                        salt: seed ^ 0x5C0B_B1E5,
                        one_in: 2,
                    },
                );
                let crashes = plan.crashes.len();
                let mut cfg = base.clone();
                cfg.faults = plan;
                let (rep, states) = run_chaos(cfg, program.clone(), graph);
                let tag = format!("{label} seed {seed} {backend:?} {streaming:?}");
                assert_eq!(clean_states, states, "{tag}: states must be bit-identical");
                assert_eq!(
                    clean.iteration_aggs, rep.iteration_aggs,
                    "{tag}: per-iteration aggregates must match"
                );
                assert!(
                    rep.faults.corruption_detected >= 1,
                    "{tag}: the scripted window must be exercised"
                );
                assert!(
                    rep.faults.corruption_repaired >= 1,
                    "{tag}: every detected corruption must be repaired"
                );
                if crashes > 0 {
                    assert!(rep.faults.aborts >= 1, "{tag}: crash schedule, no abort");
                    assert!(
                        rep.faults.iterations_redone >= 1,
                        "{tag}: crash schedule, nothing redone"
                    );
                }
                assert_eq!(rep.faults.aborts as usize, rep.faults.abort_log.len());
                for pair in rep.faults.abort_log.windows(2) {
                    assert!(
                        pair[1].gen > pair[0].gen && pair[1].time >= pair[0].time,
                        "{tag}: abort generations must strictly increase"
                    );
                }
            }
        }
    }
}

#[test]
fn pagerank_soaks_clean() {
    soak(Pagerank::new(4), &directed_graph(8), "pagerank");
}

#[test]
fn bfs_soaks_clean() {
    soak(Bfs::new(0), &undirected_graph(8), "bfs");
}

#[test]
fn mcst_soaks_clean() {
    soak(Mcst::new(), &weighted_graph(220, 260, 7), "mcst");
}

/// Host-side and layout axes under a faulted schedule: the heap event
/// queue (vs the calendar default) must not perturb the simulation at
/// all — identical report — and chunk-granularity serving
/// (`block_records = 0`) must still converge to identical states with
/// identical fault accounting under the same seeded schedule.
#[test]
fn seeded_schedules_survive_queue_and_block_index_axes() {
    let machines = 4;
    let g = directed_graph(8);
    let seed = 3;
    let mut base = test_config(machines);
    base.checkpoint = true;
    base.faults = FaultPlan::generate(seed, &FaultPlanConfig::soak(machines))
        .with_corruption_fault(CorruptionFault {
            machine: 0,
            from: 0,
            until: chaos::sim::SECS,
            salt: seed ^ 0x5C0B_B1E5,
            one_in: 2,
        });
    let (calendar, calendar_states) = run_chaos(base.clone(), Pagerank::new(4), &g);
    assert!(calendar.faults.corruption_detected >= 1);

    let mut heap = base.clone();
    heap.queue = QueueKind::Heap;
    let (heap_rep, heap_states) = run_chaos(heap, Pagerank::new(4), &g);
    assert_eq!(calendar_states, heap_states, "queue kind is host-side only");
    assert_eq!(calendar.runtime, heap_rep.runtime);
    assert_eq!(calendar.faults.corruption_detected, heap_rep.faults.corruption_detected);
    assert_eq!(calendar.faults.checksum_bytes, heap_rep.faults.checksum_bytes);
    assert_eq!(calendar.faults.aborts, heap_rep.faults.aborts);

    let mut coarse = base.clone();
    coarse.block_records = 0;
    let (coarse_rep, coarse_states) = run_chaos(coarse, Pagerank::new(4), &g);
    assert_eq!(
        calendar_states, coarse_states,
        "chunk-granularity serving changes layout, never results"
    );
    assert_eq!(calendar.faults.aborts, coarse_rep.faults.aborts);
    assert!(coarse_rep.faults.corruption_detected >= 1);
    assert_eq!(coarse_rep.blocks_skipped(), 0, "no block indexes to skip with");
}
