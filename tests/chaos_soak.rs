//! Chaos-soak recovery harness: randomized multi-fault schedules.
//!
//! For a battery of seeds, [`FaultPlan::generate`] derives a schedule of
//! machine crashes, device-fault windows and fabric stragglers, and the
//! run must end with final vertex states **bit-identical** to the
//! fault-free run of the same `(config, program, graph)` — on the
//! sequential and parallel backends, in selective and reference streaming
//! modes, for an aggregate-converging, a frontier and a stateful
//! multi-phase algorithm.
//!
//! Recovery invariants checked on every faulted run:
//! - any schedule with at least one crash records at least one abort and
//!   at least one redone iteration (the generator anchors its first crash
//!   at an early scatter barrier, which always rolls back and redoes);
//! - abort generations strictly increase (no dead-generation events are
//!   ever absorbed — a stale-gen ack or barrier reaching the coordinator
//!   would corrupt the counts and break the state equality asserted here);
//! - the faulted run converges to the same iteration count and aggregates
//!   as the fault-free run.
//!
//! `CHAOS_SOAK_SEEDS` overrides the seed count (default 20).

mod common;

use chaos::prelude::*;
use common::{directed_graph, test_config, undirected_graph, weighted_graph};

fn soak_seeds() -> u64 {
    std::env::var("CHAOS_SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
}

/// Runs the full seed battery for one program over one graph, comparing
/// every faulted run against the fault-free baseline of the same config.
fn soak<P>(program: P, graph: &chaos::graph::InputGraph, label: &str)
where
    P: GasProgram,
    P::VertexState: PartialEq + std::fmt::Debug,
{
    let machines = 4;
    let shape = FaultPlanConfig::soak(machines);
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        for streaming in [Streaming::Selective, Streaming::Reference] {
            let mut base = test_config(machines);
            base.backend = backend;
            base.streaming = streaming;
            base.checkpoint = true;
            let (clean, clean_states) = run_chaos(base.clone(), program.clone(), graph);
            assert_eq!(clean.faults.aborts, 0);
            for seed in 0..soak_seeds() {
                let plan = FaultPlan::generate(seed, &shape);
                let crashes = plan.crashes.len();
                let mut cfg = base.clone();
                cfg.faults = plan;
                let (rep, states) = run_chaos(cfg, program.clone(), graph);
                let tag = format!("{label} seed {seed} {backend:?} {streaming:?}");
                assert_eq!(clean_states, states, "{tag}: states must be bit-identical");
                assert_eq!(
                    clean.iteration_aggs, rep.iteration_aggs,
                    "{tag}: per-iteration aggregates must match"
                );
                if crashes > 0 {
                    assert!(rep.faults.aborts >= 1, "{tag}: crash schedule, no abort");
                    assert!(
                        rep.faults.iterations_redone >= 1,
                        "{tag}: crash schedule, nothing redone"
                    );
                }
                assert_eq!(rep.faults.aborts as usize, rep.faults.abort_log.len());
                for pair in rep.faults.abort_log.windows(2) {
                    assert!(
                        pair[1].gen > pair[0].gen && pair[1].time >= pair[0].time,
                        "{tag}: abort generations must strictly increase"
                    );
                }
            }
        }
    }
}

#[test]
fn pagerank_soaks_clean() {
    soak(Pagerank::new(4), &directed_graph(8), "pagerank");
}

#[test]
fn bfs_soaks_clean() {
    soak(Bfs::new(0), &undirected_graph(8), "bfs");
}

#[test]
fn mcst_soaks_clean() {
    soak(Mcst::new(), &weighted_graph(220, 260, 7), "mcst");
}
