//! Clustered chunk layout ≡ unclustered layout.
//!
//! The source-binned edge placement (`cfg.cluster_bins > 1`) changes only
//! *where* edges sit on storage — never what is computed. Three properties
//! are pinned here:
//!
//! 1. **Clustered ≡ unclustered in results.** Final vertex states, the
//!    per-iteration aggregates and the iteration count are identical
//!    between `cluster_bins = 1` (arrival-order layout) and any clustered
//!    layout. Timings, chunk geometry and skip counts legitimately differ
//!    — narrower windows skip more — so only the computed quantities are
//!    compared across layouts.
//!
//! 2. **Selective ≡ Reference, bit for bit, under clustering.** Within
//!    the clustered layout the dense-streaming oracle makes identical
//!    simulated decisions: whole-`RunReport` equality, as in
//!    `tests/selective_streaming.rs`, now with stride-bitmap skips in
//!    play.
//!
//! 3. **Backend invariance under clustering.** The parallel executor
//!    replays the same clustered run bit-identically (modulo backend
//!    provenance).
//!
//! 4. **Block-granularity invariance.** Key-sorted chunk interiors with
//!    block indexes (`cfg.block_records > 0`) change which byte ranges
//!    are read — never what is computed: final states, aggregates and
//!    iteration counts are identical between `block_records = 0`
//!    (chunk-granularity serves) and any block granularity, and the
//!    dense-streaming oracle materializes every skipped block run.

mod common;

use chaos::prelude::*;
use common::{test_config, undirected_graph, weighted_graph};
use proptest::prelude::*;

/// Pins all three properties for one (config, program, graph) cell.
/// `cfg.cluster_bins` holds the clustered bin count under test.
fn assert_layout_equivalent<P: GasProgram>(cfg: ChaosConfig, program: P, g: &InputGraph)
where
    P::VertexState: PartialEq + std::fmt::Debug,
{
    assert!(cfg.cluster_bins > 1, "cell must exercise a clustered layout");
    let run = |bins: u32, streaming: Streaming| {
        let mut c = cfg.clone().with_cluster_bins(bins);
        c.streaming = streaming;
        run_chaos(c, program.clone(), g)
    };
    let (rep_clu, states_clu) = run(cfg.cluster_bins, Streaming::Selective);
    // 1. Results are layout-invariant.
    let (rep_flat, states_flat) = run(1, Streaming::Selective);
    assert_eq!(states_clu, states_flat, "final states: clustered vs unclustered");
    assert_eq!(
        rep_clu.iteration_aggs, rep_flat.iteration_aggs,
        "the layout must not change what is computed"
    );
    assert_eq!(rep_clu.iterations, rep_flat.iterations);
    // Narrow windows can only skip more, never less.
    assert!(
        rep_clu.records_skipped() >= rep_flat.records_skipped(),
        "clustering lost skips: {} < {}",
        rep_clu.records_skipped(),
        rep_flat.records_skipped()
    );
    // 2. The dense-streaming oracle agrees bit for bit on the clustered
    //    layout (stride-bitmap skip decisions included).
    let (rep_ref, states_ref) = run(cfg.cluster_bins, Streaming::Reference);
    assert_eq!(states_clu, states_ref, "final states: selective vs reference");
    assert_eq!(
        rep_clu, rep_ref,
        "whole run report must be bit-identical between selective and \
         reference under the clustered layout"
    );
    // 3. Backend invariance.
    let mut par = cfg.clone();
    par.backend = Backend::Parallel { threads: 2 };
    let (rep_par, states_par) = run_chaos(par, program.clone(), g);
    assert_eq!(states_clu, states_par, "final states: seq vs par");
    assert_eq!(
        rep_clu.clone().normalized(),
        rep_par.normalized(),
        "clustered layout must stay backend-invariant"
    );
    // 4. Block-granularity invariance: sub-chunk serving (and the
    //    compaction suppression it implies on partial serves) must not
    //    change what is computed.
    let mut nob = cfg.clone();
    nob.block_records = 0;
    let (rep_nob, states_nob) = run_chaos(nob, program.clone(), g);
    assert_eq!(states_clu, states_nob, "final states: blocks on vs off");
    assert_eq!(
        rep_clu.iteration_aggs, rep_nob.iteration_aggs,
        "block-granular serves must not change what is computed"
    );
    assert_eq!(rep_clu.iterations, rep_nob.iterations);
    assert_eq!(
        rep_nob.blocks_skipped(),
        0,
        "chunk-granularity serves must not report block skips"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_runs_are_layout_invariant(
        machines in 1usize..5,
        pick in 0usize..10,
        scale in 6u32..8,
        chunk_kb in 4u64..17,
        bins in 2u32..40,
        br_pick in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = test_config(machines);
        cfg.chunk_bytes = chunk_kb * 1024;
        cfg.cluster_bins = bins;
        // Vary the block geometry from many tiny blocks per chunk to the
        // single-block degenerate case (which must behave like blocks off).
        cfg.block_records = [16, 64, 2048][br_pick];
        cfg.seed = seed;
        let g_dir = RmatConfig::paper(scale).generate();
        let g_und = undirected_graph(scale);
        let g_w = weighted_graph(300, 450, seed);
        match pick {
            0 => assert_layout_equivalent(cfg, Bfs::new(0), &g_und),
            1 => assert_layout_equivalent(cfg, Wcc::new(), &g_und),
            2 => assert_layout_equivalent(cfg, Mcst::new(), &g_w),
            3 => assert_layout_equivalent(cfg, Mis::new(seed), &g_und),
            4 => assert_layout_equivalent(cfg, Sssp::new(0), &g_w),
            5 => assert_layout_equivalent(cfg, Scc::new(), &g_dir),
            6 => assert_layout_equivalent(cfg, Pagerank::new(3), &g_dir),
            7 => assert_layout_equivalent(cfg, Conductance::new(seed), &g_dir),
            8 => assert_layout_equivalent(cfg, Spmv::new(2), &g_dir),
            _ => assert_layout_equivalent(cfg, BeliefPropagation::new(seed, 3), &g_dir),
        }
    }
}

#[test]
fn mcst_phase_switching_is_layout_invariant() {
    // MCST is the layout's raison d'être: delta-gated fixpoint wavefronts
    // against narrow windows, per-phase activity, Shrinking tombstones
    // and compactions across many Borůvka rounds.
    let g = weighted_graph(300, 450, 11);
    assert_layout_equivalent(test_config(3), Mcst::new(), &g);
}

#[test]
fn stealing_is_layout_invariant() {
    // Aggressive stealing over a clustered layout: stealers see the same
    // narrow windows and make the same skip decisions; compaction
    // replacements can originate from non-master machines.
    let mut cfg = test_config(3);
    cfg.steal_alpha = f64::INFINITY;
    assert_layout_equivalent(cfg, Mis::new(7), &undirected_graph(7));
    let mut cfg = test_config(3);
    cfg.steal_alpha = f64::INFINITY;
    assert_layout_equivalent(cfg, Mcst::new(), &weighted_graph(400, 600, 42));
}

#[test]
fn compaction_is_layout_invariant_and_reports_tombstones() {
    // MIS under compaction: survivors of a clustered chunk stay within
    // the source chunk's window (debug-asserted inside ChunkSet::replace)
    // and the account matches the unclustered run's results.
    let g = undirected_graph(8);
    let cfg = test_config(2);
    assert_layout_equivalent(cfg.clone(), Mis::new(3), &g);
    let (rep, _) = run_chaos(cfg, Mis::new(3), &g);
    assert!(rep.compactions() > 0, "MIS must still compact under clustering");
    assert!(rep.edges_tombstoned() > 0);
}

#[test]
fn spill_path_under_memory_pressure_is_layout_invariant() {
    // Real files, many partitions, starved page cache: the clustered
    // layout's merge/seal path must write the same bin-pure chunks
    // through the file backend, and stride-bitmap skips must skip the
    // file read.
    let dir = chaos::storage::ScratchDir::new("chaos-clustered-spill").expect("scratch dir");
    let mut cfg = test_config(2);
    cfg.mem_budget = 4 * 1024;
    cfg.pagecache_bytes = 1024;
    cfg.spill_dir = Some(dir.path().to_path_buf());
    assert_layout_equivalent(cfg, Mcst::new(), &weighted_graph(250, 350, 5));
    let mut cfg2 = test_config(2);
    cfg2.mem_budget = 4 * 1024;
    cfg2.pagecache_bytes = 1024;
    cfg2.spill_dir = Some(dir.path().to_path_buf());
    assert_layout_equivalent(cfg2, Bfs::new(0), &undirected_graph(7));
}

#[test]
fn clustered_windows_are_narrow() {
    // The layout's observable: with bins ≥ 16 on a frontier program, the
    // bulk of the stored chunks must sit in window-width buckets at or
    // below 1/8 of their partition's span, where the unclustered layout
    // puts everything in the widest bucket. Chunks are kept small enough
    // that bins hold several full chunks each (the narrow-window regime;
    // tiny graphs with big chunks degenerate to seal-tail chunks).
    let g = undirected_graph(10);
    let mut cfg = test_config(2);
    cfg.chunk_bytes = 4 * 1024;
    cfg.cluster_bins = 16;
    let (rep, _) = run_chaos(cfg.clone(), Bfs::new(0), &g);
    let h = rep.window_widths;
    let narrow: u64 = h.buckets[..5].iter().sum(); // ≤ 1/8
    assert!(
        narrow * 2 > h.chunks(),
        "clustered layout should make most windows narrow: {:?}",
        h.buckets
    );
    cfg.cluster_bins = 1;
    let (rep_flat, _) = run_chaos(cfg, Bfs::new(0), &g);
    let hf = rep_flat.window_widths;
    assert_eq!(
        hf.buckets[..5].iter().sum::<u64>(),
        0,
        "arrival-order windows span whole partitions: {:?}",
        hf.buckets
    );
}

#[test]
fn mid_wavefront_skips_appear_only_with_activity() {
    // A path graph drives BFS through a long, single-vertex wavefront:
    // with clustering, chunks are skipped even while the frontier is
    // non-empty, and the mid-wavefront account says so.
    let g = chaos::graph::builder::path(600).to_undirected();
    let mut cfg = test_config(2);
    cfg.mem_budget = 2 * 1024;
    cfg.cluster_bins = 16;
    let (rep, _) = run_chaos(cfg, Bfs::new(0), &g);
    assert!(
        rep.records_skipped_mid() > 0,
        "narrow windows must skip mid-wavefront on a sparse frontier"
    );
    assert!(rep.records_skipped() >= rep.records_skipped_mid());
    // The mid share is per-iteration consistent.
    for s in &rep.selectivity {
        assert!(s.records_skipped_mid <= s.records_skipped);
        assert!(s.chunks_skipped_mid <= s.chunks_skipped);
    }
}

#[test]
fn block_records_cross_states_digest_invariant() {
    // The bench-smoke cross in test form: `--block-records {0, 512}` over
    // selective/reference must agree on the states digest (FNV-1a over
    // the storage encodings, as `figures` prints it), with the block runs
    // actually skipping intra-chunk on the frontier program.
    fn digest<S: chaos::gas::Record>(states: &[S]) -> u64 {
        let mut buf = Vec::new();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for s in states {
            buf.clear();
            s.encode(&mut buf);
            for &b in &buf {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
    let g = chaos::graph::builder::path(600).to_undirected();
    let mut digests = Vec::new();
    let mut skipped_intra = Vec::new();
    // 0 = blocks off, 512 = the bench-smoke granularity (coarser than
    // this cell's ~500-record chunks, so it degenerates to single-block
    // chunks — the degenerate case must also hold), 64 = blocks that
    // genuinely split these chunks.
    for block_records in [0, 512, 64] {
        for streaming in [Streaming::Selective, Streaming::Reference] {
            let mut cfg = test_config(2);
            cfg.mem_budget = 2 * 1024;
            cfg.block_records = block_records;
            cfg.streaming = streaming;
            let (rep, states) = run_chaos(cfg, Bfs::new(0), &g);
            digests.push(digest(&states));
            skipped_intra.push(rep.records_skipped_intra());
        }
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "states digest must be invariant across the block-records × streaming cross: {digests:x?}"
    );
    assert_eq!(skipped_intra[0], 0, "blocks off cannot skip intra-chunk");
    assert!(
        skipped_intra[4] > 0,
        "block indexes must skip intra-chunk on a collapsing frontier"
    );
    assert_eq!(
        skipped_intra[4], skipped_intra[5],
        "selective and reference agree on block skips"
    );
}

#[test]
fn block_serves_split_chunks_mid_wavefront() {
    // A path graph's single-vertex frontier lands inside one block of a
    // served chunk: the other blocks must skip, the skipped records must
    // never be streamed, and the per-iteration accounts must stay
    // internally consistent.
    let g = chaos::graph::builder::path(600).to_undirected();
    let mut cfg = test_config(2);
    cfg.mem_budget = 2 * 1024;
    cfg.chunk_bytes = 4 * 1024;
    cfg.block_records = 32;
    let (rep, _) = run_chaos(cfg, Bfs::new(0), &g);
    assert!(rep.blocks_skipped() > 0, "block serves must split chunks");
    assert!(rep.records_skipped_intra() > 0);
    for s in &rep.selectivity {
        assert!(s.blocks_skipped_mid <= s.blocks_skipped);
        assert!(s.records_skipped_intra_mid <= s.records_skipped_intra);
        // A partial serve implies a live frontier, so intra-chunk skips
        // are mid-wavefront by construction.
        assert_eq!(s.blocks_skipped_mid, s.blocks_skipped);
    }
}

#[test]
fn selectivity_aware_stealing_preserves_results() {
    // The selectivity-scaled steal criterion changes who helps whom, but
    // never what is computed: selective (scaled D) and dense (unscaled D)
    // agree on states and aggregates even under an always-steal bias on a
    // collapsed frontier. (The scaling itself is unit-tested next to
    // Equation 2 in chaos-core.)
    let g = chaos::graph::builder::path(600).to_undirected();
    let mut cfg = test_config(3);
    cfg.mem_budget = 2 * 1024;
    cfg.steal_alpha = f64::INFINITY;
    let (rep_sel, states_sel) = run_chaos(cfg.clone(), Bfs::new(0), &g);
    cfg.streaming = Streaming::Dense;
    let (rep_dense, states_dense) = run_chaos(cfg, Bfs::new(0), &g);
    assert_eq!(states_sel, states_dense);
    assert_eq!(rep_sel.iteration_aggs, rep_dense.iteration_aggs);
}
