//! End-to-end data integrity: checksummed frames, silent-corruption and
//! torn-write injection, and the detect–repair–scrub recovery ladder.
//!
//! Corruption windows flip bits *on the wire*, never in the stored chunk,
//! so the first rung of repair is a bounded-backoff re-read; a read that
//! stays corrupt through every probe waits the window out (and, for
//! checkpoint copies, rewrites the verified bytes). A *torn* checkpoint
//! write is the persistent case: it surfaces during rollback when the
//! torn chunk's frame check fails, and the cluster falls back one
//! snapshot down the depth-2 committed-checkpoint chain. Either way the
//! final vertex states must be bit-identical to the fault-free run, on
//! both executor backends and in both streaming modes.

mod common;

use chaos::prelude::*;
use chaos::sim::SECS;
use common::{directed_graph, test_config};

/// A wide scripted window over the read-heavy start of the run, corrupting
/// roughly every other framed read on one machine.
fn wide_window(machine: usize) -> CorruptionFault {
    CorruptionFault {
        machine,
        from: 0,
        until: SECS,
        salt: 0x00DD_BA11,
        one_in: 2,
    }
}

#[test]
fn corruption_windows_detect_and_repair_without_changing_results() {
    let g = directed_graph(9);
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        for streaming in [Streaming::Selective, Streaming::Reference] {
            let mut cfg = test_config(3);
            cfg.backend = backend;
            cfg.streaming = streaming;
            let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
            cfg.faults = FaultPlan::none().with_corruption_fault(wide_window(0));
            let (rep, states) = run_chaos(cfg, Pagerank::new(4), &g);
            let tag = format!("{backend:?} {streaming:?}");
            assert_eq!(clean_states, states, "{tag}: repair must be exact");
            assert_eq!(clean.iteration_aggs, rep.iteration_aggs, "{tag}");
            assert!(rep.faults.corruption_detected > 0, "{tag}: window never hit");
            assert!(rep.faults.corruption_repaired > 0, "{tag}: nothing repaired");
            assert!(
                rep.runtime > clean.runtime,
                "{tag}: re-reads must cost simulated time"
            );
            assert!(rep.faults.faulted_time > 0, "{tag}");
            assert_eq!(rep.faults.aborts, 0, "{tag}: detection alone never aborts");
            // Frames are always on; corruption only adds re-read charges.
            assert!(clean.faults.checksum_bytes > 0, "{tag}");
            assert!(
                rep.faults.checksum_bytes > clean.faults.checksum_bytes,
                "{tag}: repair re-reads re-verify frames"
            );
            assert_eq!(clean.faults.corruption_detected, 0, "{tag}");
        }
    }
}

#[test]
fn corruption_accounting_is_backend_invariant() {
    // The oracle keys on (simulated completion time, per-engine read
    // sequence), both backend-invariant, so the *counts* — not just the
    // states — must match across executors.
    let g = directed_graph(9);
    let mut reports = Vec::new();
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        let mut cfg = test_config(3);
        cfg.backend = backend;
        cfg.faults = FaultPlan::none()
            .with_corruption_fault(wide_window(0))
            .with_corruption_fault(wide_window(2));
        let (rep, _) = run_chaos(cfg, Pagerank::new(4), &g);
        reports.push(rep);
    }
    let (seq, par) = (&reports[0], &reports[1]);
    assert_eq!(seq.faults.corruption_detected, par.faults.corruption_detected);
    assert_eq!(seq.faults.corruption_repaired, par.faults.corruption_repaired);
    assert_eq!(seq.faults.checksum_bytes, par.faults.checksum_bytes);
    assert_eq!(seq.faults.faulted_time, par.faults.faulted_time);
    assert_eq!(seq.runtime, par.runtime);
}

#[test]
fn torn_checkpoint_write_falls_back_down_the_depth2_chain() {
    // The crash tears machine 1's in-flight checkpoint write. Rollback
    // first restores from the newest committed snapshot; the torn chunk
    // fails its frame check through every bounded-backoff probe, the
    // engine reports the fallback, and the coordinator aborts again one
    // snapshot deeper — two aborts, two redone iterations, exact states.
    let g = directed_graph(10);
    for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
        let mut cfg = test_config(4);
        cfg.backend = backend;
        cfg.checkpoint = true;
        let (_, clean_states) = run_chaos(cfg.clone(), Pagerank::new(5), &g);
        cfg.faults = FaultPlan::none().with_crash(CrashFault {
            machine: 1,
            trigger: CrashTrigger::Iteration {
                iteration: 3,
                phase: chaos::core::msg::PhaseKind::Scatter,
            },
            downtime: SECS / 10,
            torn: true,
        });
        let (rep, states) = run_chaos(cfg, Pagerank::new(5), &g);
        let tag = format!("{backend:?}");
        assert_eq!(clean_states, states, "{tag}: depth-2 recovery must be exact");
        assert_eq!(
            rep.faults.aborts, 2,
            "{tag}: the tear forces a second, deeper abort"
        );
        assert_eq!(rep.faults.iterations_redone, 2, "{tag}");
        // Six probes of the torn chunk (the bounded-backoff retry budget)
        // all fail their frame check before the engine reports the tear.
        assert!(
            rep.faults.corruption_detected >= 6,
            "{tag}: every probe of the torn chunk fails its frame check"
        );
        assert!(
            rep.faults.corruption_repaired >= 1,
            "{tag}: the deeper restore repairs the torn chunk"
        );
        let log = &rep.faults.abort_log;
        assert!(log[1].gen > log[0].gen, "{tag}: generations strictly increase");
    }
}

#[test]
fn torn_flag_is_inert_without_a_rolled_back_iteration() {
    // A mid-commit crash promotes the pending snapshot instead of rolling
    // back, so there is no restore for the tear to surface in: the flag
    // must change nothing relative to the untorn run.
    let g = directed_graph(9);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    let crash = |torn| {
        FaultPlan::none().with_crash(CrashFault {
            machine: 1,
            trigger: CrashTrigger::Commit { iteration: 2 },
            downtime: SECS / 10,
            torn,
        })
    };
    cfg.faults = crash(false);
    let (plain, plain_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    cfg.faults = crash(true);
    let (torn, torn_states) = run_chaos(cfg, Pagerank::new(4), &g);
    assert_eq!(plain_states, torn_states);
    assert_eq!(plain.runtime, torn.runtime);
    assert_eq!(plain.faults.aborts, 1);
    assert_eq!(torn.faults.aborts, 1);
    assert_eq!(torn.faults.iterations_redone, 0);
}

#[test]
fn failed_validation_drops_the_pending_snapshot_cluster_wide() {
    // A snapshot that fails the coordinator's validation round is dropped
    // on every machine — the committed chain stands and the run completes
    // with unchanged results, one dropped snapshot per engine.
    let g = directed_graph(9);
    let machines = 3;
    let mut cfg = test_config(machines);
    cfg.checkpoint = true;
    let (_, clean_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    let mut cluster = Cluster::new(cfg, Pagerank::new(4), &g).expect("valid");
    cluster.inject_pending_tear(0);
    let rep = cluster.run();
    assert_eq!(
        cluster.snapshots_dropped() as usize,
        machines,
        "one machine's tear drops the round on every machine"
    );
    assert_eq!(cluster.final_states(), clean_states);
    assert_eq!(rep.faults.aborts, 0, "a refused promote is not an abort");
    // Later rounds promote normally: the final committed checkpoint is the
    // last gather barrier's snapshot, i.e. the final state.
    assert_eq!(cluster.checkpoint_states(), clean_states);
}

#[test]
fn scrub_pass_verifies_every_stored_frame_between_iterations() {
    let g = directed_graph(9);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    let (plain, plain_states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    assert_eq!(plain.faults.frames_scrubbed, 0, "scrub is off by default");
    cfg.scrub = true;
    let (scrubbed, states) = run_chaos(cfg.clone(), Pagerank::new(4), &g);
    assert_eq!(plain_states, states, "scrubbing never changes results");
    assert!(scrubbed.faults.frames_scrubbed > 0);
    assert!(
        scrubbed.runtime > plain.runtime,
        "scrub reads cost simulated time"
    );
    assert!(scrubbed.faults.checksum_bytes > plain.faults.checksum_bytes);
    assert_eq!(scrubbed.faults.corruption_detected, 0, "no faults injected");
    // Scrub under an active corruption window: the scrubber's bulk read
    // draws from the same oracle, detects, re-reads, and the run still
    // converges to the same states.
    cfg.faults = FaultPlan::none().with_corruption_fault(wide_window(1));
    let (dirty, dirty_states) = run_chaos(cfg, Pagerank::new(4), &g);
    assert_eq!(plain_states, dirty_states);
    assert!(dirty.faults.corruption_detected > 0);
    assert!(dirty.faults.frames_scrubbed >= scrubbed.faults.frames_scrubbed);
}
