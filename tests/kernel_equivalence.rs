//! Batched-kernel ≡ per-record equivalence: running any workload with a
//! program's specialized `scatter_chunk`/`gather_chunk` kernels must be
//! bit-identical to running it through the default per-edge/per-update
//! loops (`PerRecordKernels<P>` pins the defaults while delegating every
//! scalar method).
//!
//! This is the contract that lets hot programs ship branch-light batched
//! bodies without owning any semantics: the per-record methods remain the
//! specification, the chunk kernels a pure optimization. Everything is
//! compared — final vertex states, simulated completion time, event
//! counts, device/fabric statistics and the records-streamed counter.

mod common;

use chaos::prelude::*;
use common::{test_config, undirected_graph, weighted_graph};
use proptest::prelude::*;

/// Runs `program` specialized and per-record under the same config and
/// asserts bit-identical reports and states.
fn assert_kernels_equivalent<P: GasProgram>(cfg: ChaosConfig, program: P, g: &InputGraph)
where
    P::VertexState: PartialEq + std::fmt::Debug,
{
    let (rep_fast, states_fast) = run_chaos(cfg.clone(), program.clone(), g);
    let (rep_ref, states_ref) = run_chaos(cfg, PerRecordKernels(program), g);
    assert_eq!(states_fast, states_ref, "final vertex states must match");
    assert_eq!(
        rep_fast, rep_ref,
        "whole run report must be bit-identical across kernel paths"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_runs_are_kernel_invariant(
        machines in 1usize..5,
        pick in 0usize..8,
        scale in 6u32..8,
        chunk_kb in 4u64..17,
        window in 2usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = test_config(machines);
        cfg.chunk_bytes = chunk_kb * 1024;
        cfg.batch_window = window;
        cfg.seed = seed;
        let g_dir = RmatConfig::paper(scale).generate();
        let g_und = undirected_graph(scale);
        match pick {
            0 => assert_kernels_equivalent(cfg, Pagerank::new(3), &g_dir),
            1 => assert_kernels_equivalent(cfg, Wcc::new(), &g_und),
            2 => assert_kernels_equivalent(cfg, Bfs::new(0), &g_und),
            3 => assert_kernels_equivalent(cfg, Spmv::new(2), &g_dir),
            4 => assert_kernels_equivalent(cfg, Mis::new(seed), &g_und),
            5 => assert_kernels_equivalent(cfg, BeliefPropagation::new(seed, 3), &g_dir),
            6 => assert_kernels_equivalent(cfg, Conductance::new(seed), &g_dir),
            _ => assert_kernels_equivalent(cfg, Sssp::new(0), &weighted_graph(400, 600, seed)),
        }
    }
}

#[test]
fn scc_backward_sweep_is_kernel_invariant() {
    // SCC's backward phases stream the destination-keyed edge copy with
    // `Direction::In`: the batched body reads scatter state from `e.dst`
    // and emits to `e.src`. FW-BW coloring exercises all four phases
    // (including the all-inactive BackwardInit and Reset iterations).
    let g = RmatConfig::paper(7).generate();
    assert_kernels_equivalent(test_config(3), Scc::new(), &g);
}

#[test]
fn mis_rounds_are_kernel_invariant() {
    // Luby select/notify alternation plus the Shrinking dead-edge scan
    // (PerRecordKernels pins `dead_edges` to the per-edge loop too, so
    // compaction decisions must also agree).
    let g = undirected_graph(7);
    assert_kernels_equivalent(test_config(3), Mis::new(42), &g);
}

#[test]
fn mcst_phase_switching_is_kernel_invariant() {
    // MCST exercises all four sub-phases (and with them every branch of
    // its specialized kernels) across many iterations.
    let g = weighted_graph(300, 450, 11);
    assert_kernels_equivalent(test_config(3), Mcst::new(), &g);
}

#[test]
fn stealing_is_kernel_invariant() {
    // Aggressive stealing makes stolen partitions stream through the
    // batched kernels on non-master machines.
    let mut cfg = test_config(3);
    cfg.steal_alpha = f64::INFINITY;
    assert_kernels_equivalent(cfg, Sssp::new(0), &weighted_graph(500, 800, 42));
}

#[test]
fn sequential_oracle_is_kernel_invariant() {
    // The in-memory reference executor routes through the same kernel API;
    // pin it too.
    let g = undirected_graph(7);
    let fast = run_sequential(Wcc::new(), &g, 10_000);
    let slow = run_sequential(PerRecordKernels(Wcc::new()), &g, 10_000);
    assert_eq!(fast.states, slow.states);
    assert_eq!(fast.iterations, slow.iterations);
}
