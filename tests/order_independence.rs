//! Order-independence: the property Chaos is built on.
//!
//! §2 of the paper: "Chaos expects the final result of multiple
//! applications of any of the user-supplied functions Scatter, Gather and
//! Apply to be independent of the order in which they are applied ...
//! Chaos takes advantage of this order-independence to achieve an
//! efficient solution." Storage engines return chunks in arbitrary order
//! and stealers split updates arbitrarily, so every algorithm must produce
//! the same result under any edge/update permutation.
//!
//! These property tests shuffle the *input edge list* (which permutes both
//! scatter order and, transitively, gather order in the sequential
//! executor) and require identical results. Floating-point accumulations
//! get a tolerance; integer/ordinal algorithms must match exactly.

mod common;

use chaos::prelude::*;
use chaos::sim::Rng;
use proptest::prelude::*;

fn shuffled(g: &InputGraph, seed: u64) -> InputGraph {
    let mut edges = g.edges.clone();
    Rng::new(seed).shuffle(&mut edges);
    InputGraph::new(g.num_vertices, edges, g.weighted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bfs_is_order_independent(seed in any::<u64>(), gseed in 0u64..50) {
        let g = chaos::graph::builder::gnm(120, 600, false, gseed).to_undirected();
        let a = run_sequential(Bfs::new(0), &g, 10_000).states;
        let b = run_sequential(Bfs::new(0), &shuffled(&g, seed), 10_000).states;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn wcc_is_order_independent(seed in any::<u64>(), gseed in 0u64..50) {
        let g = chaos::graph::builder::gnm(120, 400, false, gseed).to_undirected();
        let a = run_sequential(Wcc::new(), &g, 100_000).states;
        let b = run_sequential(Wcc::new(), &shuffled(&g, seed), 100_000).states;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mis_is_order_independent(seed in any::<u64>(), gseed in 0u64..50) {
        let g = chaos::graph::builder::gnm(100, 500, false, gseed).to_undirected();
        let a = run_sequential(Mis::new(7), &g, 10_000).states;
        let b = run_sequential(Mis::new(7), &shuffled(&g, seed), 10_000).states;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn scc_is_order_independent(seed in any::<u64>(), gseed in 0u64..50) {
        let g = chaos::graph::builder::gnm(80, 400, false, gseed);
        let a = run_sequential(Scc::new(), &g, 1_000_000).states;
        let b = run_sequential(Scc::new(), &shuffled(&g, seed), 1_000_000).states;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mcst_total_is_order_independent(seed in any::<u64>(), gseed in 0u64..20) {
        let g = chaos::graph::builder::connected_weighted(60, 120, gseed);
        let a = run_sequential(Mcst::new(), &g, 1_000_000);
        let b = run_sequential(Mcst::new(), &shuffled(&g, seed), 1_000_000);
        let wa = Mcst::total_weight(&a.iterations);
        let wb = Mcst::total_weight(&b.iterations);
        prop_assert!((wa - wb).abs() <= 1e-6 * wa.max(1.0), "{wa} vs {wb}");
    }

    #[test]
    fn pagerank_is_order_independent_within_fp_tolerance(
        seed in any::<u64>(),
        gseed in 0u64..50,
    ) {
        let g = chaos::graph::builder::gnm(100, 800, false, gseed);
        let a = run_sequential(Pagerank::new(4), &g, 5).states;
        let b = run_sequential(Pagerank::new(4), &shuffled(&g, seed), 5).states;
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(
                ((x.0 - y.0) / x.0.max(1.0)).abs() < 1e-4,
                "{} vs {}", x.0, y.0
            );
        }
    }

    #[test]
    fn sssp_is_order_independent(seed in any::<u64>(), gseed in 0u64..20) {
        let g = chaos::graph::builder::connected_weighted(80, 200, gseed);
        let a = run_sequential(Sssp::new(0), &g, 100_000).states;
        let b = run_sequential(Sssp::new(0), &shuffled(&g, seed), 100_000).states;
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x.0 - y.0).abs() < 1e-4 * x.0.max(1.0));
        }
    }

    #[test]
    fn conductance_counts_are_order_independent(seed in any::<u64>(), gseed in 0u64..50) {
        let g = chaos::graph::builder::gnm(100, 700, false, gseed);
        let a = run_sequential(Conductance::new(3), &g, 2);
        let b = run_sequential(Conductance::new(3), &shuffled(&g, seed), 2);
        prop_assert_eq!(
            Conductance::counts(a.final_aggregates()),
            Conductance::counts(b.final_aggregates())
        );
    }
}

/// The distributed engine permutes far more aggressively than an edge-list
/// shuffle (random chunk placement, random service order, stealing); the
/// engine-vs-shuffled-sequential cross-check closes the loop.
#[test]
fn distributed_engine_agrees_with_shuffled_sequential() {
    let g = chaos::graph::builder::gnm(200, 1500, false, 9).to_undirected();
    let seq = run_sequential(Wcc::new(), &shuffled(&g, 0xABCD), 100_000).states;
    let mut cfg = common::test_config(4);
    cfg.steal_alpha = f64::INFINITY; // maximal replication of gather work
    let (_, dist) = run_chaos(cfg, Wcc::new(), &g);
    assert_eq!(seq, dist);
}
