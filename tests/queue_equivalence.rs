//! Event-queue and batching invariance: the calendar queue and the
//! same-machine envelope batching are *host-side* optimizations of the
//! executor — every simulated quantity (final vertex states, completion
//! time, logical event count, device/fabric statistics) must be
//! bit-identical to the binary-heap, unbatched reference, for every
//! program and both execution backends.
//!
//! This is the PR-6 counterpart of `backend_equivalence`: that suite pins
//! sequential vs parallel; this one pins the (queue store × batching)
//! cross against the reference configuration on top of whichever backend
//! the config selects.

mod common;

use chaos::prelude::*;
use chaos::storage::ScratchDir;
use common::{directed_graph, test_config, undirected_graph, weighted_graph};

/// Runs `(cfg, program, graph)` under every (queue, batching) combination
/// and asserts the final states and the whole normalized report match the
/// binary-heap/unbatched reference. Returns the default-configuration
/// (calendar + batching) report for further assertions.
fn assert_queue_invariant<P: GasProgram>(
    cfg: ChaosConfig,
    program: P,
    g: &InputGraph,
) -> RunReport
where
    P::VertexState: std::fmt::Debug + PartialEq,
{
    let reference = cfg.clone().with_queue(QueueKind::Heap).with_batching(false);
    let (rep_ref, states_ref) = run_chaos(reference, program.clone(), g);
    let mut default_rep = None;
    for (queue, batching) in [
        (QueueKind::Calendar, true),
        (QueueKind::Calendar, false),
        (QueueKind::Heap, true),
    ] {
        let c = cfg.clone().with_queue(queue).with_batching(batching);
        let (rep, states) = run_chaos(c, program.clone(), g);
        let tag = format!("queue={queue}, batching={batching}");
        assert_eq!(states_ref, states, "final states must match ({tag})");
        assert_eq!(
            rep_ref.runtime, rep.runtime,
            "simulated completion time must match ({tag})"
        );
        assert_eq!(
            rep_ref.events, rep.events,
            "logical event count is invariant ({tag})"
        );
        assert!(
            rep.envelopes <= rep.events,
            "an envelope carries at least one message ({tag})"
        );
        if !batching {
            assert_eq!(
                rep.envelopes, rep.events,
                "without batching every envelope is one message ({tag})"
            );
        }
        assert_eq!(
            rep_ref.clone().normalized(),
            rep.clone().normalized(),
            "whole report must match after clearing provenance ({tag})"
        );
        if queue == QueueKind::Calendar && batching {
            default_rep = Some(rep);
        }
    }
    default_rep.expect("default configuration ran")
}

#[test]
fn all_ten_programs_are_queue_invariant() {
    // Every Table 1 algorithm, sequential backend. Graphs are small but
    // multi-partition (see `test_config`), so requests, steals and
    // barriers all flow.
    let d = directed_graph(7);
    let u = undirected_graph(7);
    let w = weighted_graph(400, 600, 7);
    let cfg = || test_config(3);
    assert_queue_invariant(cfg(), Pagerank::new(3), &d);
    assert_queue_invariant(cfg(), Spmv::new(2), &d);
    assert_queue_invariant(cfg(), Scc::new(), &d);
    assert_queue_invariant(cfg(), BeliefPropagation::new(3, 4), &d);
    assert_queue_invariant(cfg(), Wcc::new(), &u);
    assert_queue_invariant(cfg(), Bfs::new(0), &u);
    assert_queue_invariant(cfg(), Mis::new(5), &u);
    assert_queue_invariant(cfg(), Conductance::new(9), &u);
    assert_queue_invariant(cfg(), Sssp::new(0), &w);
    assert_queue_invariant(cfg(), Mcst::new(), &w);
}

#[test]
fn parallel_backend_is_queue_invariant() {
    // The lane queues take the same calendar/heap switch; batching is a
    // sequential-only path, so here it must simply change nothing.
    let g = directed_graph(8);
    let mut cfg = test_config(3);
    cfg.backend = Backend::Parallel { threads: 3 };
    let rep = assert_queue_invariant(cfg, Pagerank::new(3), &g);
    assert!(rep.windows > 0, "windowed parallel path must engage");
    assert_eq!(
        rep.envelopes, rep.events,
        "the parallel backend never coalesces"
    );
}

#[test]
fn parallel_and_sequential_agree_under_default_queue() {
    // Cross-check the two suites' contracts compose: calendar + batching
    // (the defaults) on both backends, one normalized report.
    let g = undirected_graph(8);
    let cfg = test_config(3);
    let (rep_seq, states_seq) = run_chaos(cfg.clone(), Wcc::new(), &g);
    let mut par = cfg;
    par.backend = Backend::Parallel { threads: 3 };
    let (rep_par, states_par) = run_chaos(par, Wcc::new(), &g);
    assert_eq!(states_seq, states_par);
    assert_eq!(rep_seq.events, rep_par.events);
    assert_eq!(rep_seq.normalized(), rep_par.normalized());
}

#[test]
fn stealing_is_queue_invariant() {
    // Locality-seeking placement plus always-steal maximizes the
    // master/stealer accumulator exchange — and with LocalOnly placement
    // every chunk request hits the local storage engine, so this is also
    // where envelope batching actually coalesces.
    let g = weighted_graph(600, 900, 42);
    let mut cfg = test_config(3);
    cfg.placement = Placement::LocalOnly;
    cfg.steal_alpha = f64::INFINITY;
    let rep = assert_queue_invariant(cfg, Sssp::new(0), &g);
    assert!(
        rep.envelopes < rep.events,
        "local request batches must coalesce: {} envelopes for {} events",
        rep.envelopes,
        rep.events
    );
    assert!(rep.batching_ratio() > 1.0);
}

#[test]
fn mcst_phase_switching_is_queue_invariant() {
    // MCST alternates scatter directions across phases (the paper's
    // forward/backward sweeps) — the heaviest user of the reverse edge
    // copy and of barrier-released phase switches.
    let g = weighted_graph(500, 800, 11);
    assert_queue_invariant(test_config(3), Mcst::new(), &g);
}

#[test]
fn spill_under_pressure_is_queue_invariant() {
    // A tiny memory budget over real spill files: many partitions, every
    // structure round-tripping through storage, device timers interleaved
    // with request traffic.
    let g = directed_graph(9);
    let scratch = ScratchDir::new("chaos-test-queue-spill").expect("scratch");
    let mut cfg = test_config(4);
    cfg.mem_budget = 1024;
    cfg.chunk_bytes = 4 * 1024;
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    let rep = assert_queue_invariant(cfg, Pagerank::new(3), &g);
    assert!(rep.partitions > 1, "budget must force multiple partitions");
}

#[test]
fn failure_recovery_is_queue_invariant() {
    // Generation bumps, stale-message drops and the reboot self-event:
    // the paths most sensitive to event ordering, now crossed with the
    // envelope unpack path (each inner message re-checks the generation).
    let g = undirected_graph(8);
    let mut cfg = test_config(3);
    cfg.checkpoint = true;
    cfg.faults = FaultPlan::crash(1, 1, chaos::sim::SECS);
    assert_queue_invariant(cfg, Wcc::new(), &g);
}
