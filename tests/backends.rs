//! Storage-backend equivalence: real files vs in-memory payloads.

mod common;

use chaos::prelude::*;
use chaos::storage::ScratchDir;
use common::{test_config, undirected_graph};

#[test]
fn file_backend_matches_memory_backend_exactly() {
    let g = undirected_graph(8);
    let scratch = ScratchDir::new("chaos-test-backend").expect("scratch");
    let mem_cfg = test_config(3);
    let mut file_cfg = mem_cfg.clone();
    file_cfg.spill_dir = Some(scratch.path().to_path_buf());

    let (mem_rep, mem_states) = run_chaos(mem_cfg, Wcc::new(), &g);
    let (file_rep, file_states) = run_chaos(file_cfg, Wcc::new(), &g);

    assert_eq!(mem_states, file_states);
    assert_eq!(
        mem_rep.runtime, file_rep.runtime,
        "virtual time must not depend on the backend"
    );
    assert_eq!(mem_rep.events, file_rep.events);
}

#[test]
fn file_backend_writes_real_files() {
    let g = undirected_graph(7);
    let scratch = ScratchDir::new("chaos-test-files").expect("scratch");
    let mut cfg = test_config(2);
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    let (_, _) = run_chaos(cfg, Bfs::new(0), &g);
    let mut found_nonempty = false;
    for machine in 0..2 {
        let dir = scratch.path().join(format!("machine-{machine}"));
        assert!(dir.is_dir(), "machine dir exists");
        for entry in std::fs::read_dir(&dir).expect("readable") {
            let entry = entry.expect("entry");
            if entry.metadata().expect("meta").len() > 0 {
                found_nonempty = true;
            }
        }
    }
    assert!(found_nonempty, "some chunk data must have hit disk");
}

#[test]
fn file_backend_supports_reverse_edges() {
    // SCC materializes the destination-keyed edge copy; make sure it round
    // trips through files too.
    let g = chaos::graph::builder::cycle(64);
    let scratch = ScratchDir::new("chaos-test-rev").expect("scratch");
    let mut cfg = test_config(2);
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    let (_, states) = run_chaos(cfg, Scc::new(), &g);
    // The coloring algorithm labels an SCC by its max-id root: one SCC, one
    // label, everyone assigned.
    assert!(states.iter().all(|s| s.1 == states[0].1), "one big SCC");
    assert_ne!(states[0].1, u64::MAX, "everyone assigned");
}
