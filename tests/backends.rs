//! Storage-backend equivalence: real files vs in-memory payloads.

mod common;

use chaos::graph::reference;
use chaos::prelude::*;
use chaos::storage::ScratchDir;
use common::{close, directed_graph, test_config, undirected_graph};

#[test]
fn file_backend_matches_memory_backend_exactly() {
    let g = undirected_graph(8);
    let scratch = ScratchDir::new("chaos-test-backend").expect("scratch");
    let mem_cfg = test_config(3);
    let mut file_cfg = mem_cfg.clone();
    file_cfg.spill_dir = Some(scratch.path().to_path_buf());

    let (mem_rep, mem_states) = run_chaos(mem_cfg, Wcc::new(), &g);
    let (file_rep, file_states) = run_chaos(file_cfg, Wcc::new(), &g);

    assert_eq!(mem_states, file_states);
    assert_eq!(
        mem_rep.runtime, file_rep.runtime,
        "virtual time must not depend on the backend"
    );
    assert_eq!(mem_rep.events, file_rep.events);
}

#[test]
fn file_backend_writes_real_files() {
    let g = undirected_graph(7);
    let scratch = ScratchDir::new("chaos-test-files").expect("scratch");
    let mut cfg = test_config(2);
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    let (_, _) = run_chaos(cfg, Bfs::new(0), &g);
    let mut found_nonempty = false;
    for machine in 0..2 {
        let dir = scratch.path().join(format!("machine-{machine}"));
        assert!(dir.is_dir(), "machine dir exists");
        for entry in std::fs::read_dir(&dir).expect("readable") {
            let entry = entry.expect("entry");
            if entry.metadata().expect("meta").len() > 0 {
                found_nonempty = true;
            }
        }
    }
    assert!(found_nonempty, "some chunk data must have hit disk");
}

#[test]
fn spill_path_survives_memory_pressure() {
    // A mid-size Pagerank squeezed into a tiny vertex-memory budget: many
    // streaming partitions, every structure (edges, updates, vertices)
    // round-tripping through real files via `chaos_storage::file`, and the
    // final ranks must still match the exact oracle.
    let machines = 4;
    let g = directed_graph(10);
    let scratch = ScratchDir::new("chaos-test-spill-pressure").expect("scratch");
    let mut cfg = test_config(machines);
    cfg.mem_budget = 1024; // ~1/8 of the vertex set per partition
    cfg.chunk_bytes = 4 * 1024;
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    let oracle = reference::pagerank(&g, 5);
    let (report, states) = run_chaos(cfg.clone(), Pagerank::new(5), &g);
    assert!(
        report.partitions >= 2 * machines,
        "the budget must force real partition pressure, got {}",
        report.partitions
    );
    assert_eq!(states.len() as u64, g.num_vertices);
    for (v, (got, want)) in states.iter().zip(oracle.iter()).enumerate() {
        assert!(close(got.0 as f64, *want, 1e-3), "v{v}: {} vs {want}", got.0);
    }

    // The chunks really hit the files: every machine spilled data, and the
    // aggregate at least covers one copy of the partitioned edge set
    // (20 bytes per edge record).
    let mut total = 0u64;
    for machine in 0..machines {
        let dir = scratch.path().join(format!("machine-{machine}"));
        assert!(dir.is_dir(), "machine {machine} dir exists");
        let mut machine_bytes = 0u64;
        for entry in std::fs::read_dir(&dir).expect("readable") {
            machine_bytes += entry.expect("entry").metadata().expect("meta").len();
        }
        assert!(machine_bytes > 0, "machine {machine} spilled nothing");
        total += machine_bytes;
    }
    assert!(
        total >= g.num_edges() * 20,
        "spilled {total} bytes < one edge-set copy ({})",
        g.num_edges() * 20
    );

    // And the parallel backend drives the identical file-backed run.
    let scratch_par = ScratchDir::new("chaos-test-spill-par").expect("scratch");
    cfg.spill_dir = Some(scratch_par.path().to_path_buf());
    cfg.backend = Backend::Parallel { threads: 3 };
    let (report_par, states_par) = run_chaos(cfg, Pagerank::new(5), &g);
    assert_eq!(states, states_par);
    assert_eq!(report.runtime, report_par.runtime);
    assert_eq!(report.events, report_par.events);
}

#[test]
fn file_backend_supports_reverse_edges() {
    // SCC materializes the destination-keyed edge copy; make sure it round
    // trips through files too.
    let g = chaos::graph::builder::cycle(64);
    let scratch = ScratchDir::new("chaos-test-rev").expect("scratch");
    let mut cfg = test_config(2);
    cfg.spill_dir = Some(scratch.path().to_path_buf());
    let (_, states) = run_chaos(cfg, Scc::new(), &g);
    // The coloring algorithm labels an SCC by its max-id root: one SCC, one
    // label, everyone assigned.
    assert!(states.iter().all(|s| s.1 == states[0].1), "one big SCC");
    assert_ne!(states[0].1, u64::MAX, "everyone assigned");
}
