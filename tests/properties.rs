//! Property-based tests (proptest) over cross-crate invariants.

mod common;

use chaos::core::batching;
use chaos::gas::record::{decode_all, encode_all};
use chaos::graph::{partition_edges, Edge, InputGraph, PartitionSpec};
use chaos::prelude::*;
use chaos::sim::{Resource, Rng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_ranges_cover_and_are_disjoint(n in 1u64..10_000, p in 1usize..64) {
        let spec = PartitionSpec::with_partitions(n, p);
        let mut covered = 0u64;
        for i in 0..p {
            let r = spec.range(i);
            prop_assert_eq!(r.start, covered.min(n));
            covered = r.end;
            for v in r.clone() {
                prop_assert_eq!(spec.partition_of(v), i);
            }
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn for_memory_is_smallest_multiple(
        n in 1u64..100_000,
        vbytes in 1u64..64,
        budget in 64u64..1_000_000,
        m in 1usize..33,
    ) {
        let spec = PartitionSpec::for_memory(n, vbytes, budget, m);
        prop_assert_eq!(spec.num_partitions % m, 0);
        let fits = |parts: usize| n.div_ceil(parts as u64) * vbytes <= budget;
        prop_assert!(fits(spec.num_partitions));
        if spec.num_partitions > m {
            prop_assert!(!fits(spec.num_partitions - m));
        }
    }

    #[test]
    fn edge_binning_loses_nothing(
        edges in proptest::collection::vec((0u64..500, 0u64..500), 0..2000),
        p in 1usize..16,
    ) {
        let edges: Vec<Edge> = edges.into_iter().map(|(s, d)| Edge::new(s, d)).collect();
        let g = InputGraph::new(500, edges, false);
        let spec = PartitionSpec::with_partitions(500, p);
        let parts = partition_edges(&g, &spec);
        prop_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), g.edges.len());
        for (i, es) in parts.iter().enumerate() {
            for e in es {
                prop_assert_eq!(spec.partition_of(e.src), i);
            }
        }
    }

    #[test]
    fn record_codec_roundtrips(values in proptest::collection::vec(any::<u64>(), 0..256)) {
        let buf = encode_all(&values);
        prop_assert_eq!(decode_all::<u64>(&buf), values);
    }

    #[test]
    fn edge_record_roundtrips(src in any::<u64>(), dst in any::<u64>(), w in any::<f32>()) {
        prop_assume!(!w.is_nan());
        let e = Edge { src, dst, weight: w };
        let buf = encode_all(&[e]);
        let back = decode_all::<Edge>(&buf);
        prop_assert_eq!(back[0], e);
    }

    #[test]
    fn resource_never_time_travels(
        reqs in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..50),
    ) {
        let mut r = Resource::new(1_000_000, 10);
        let mut last_done = 0u64;
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|x| x.0);
        for (t, bytes) in sorted {
            let done = r.serve(t, bytes);
            prop_assert!(done > t, "completion after issue");
            prop_assert!(done >= last_done, "FIFO completion order");
            last_done = done;
        }
    }

    #[test]
    fn utilization_formula_bounds(m in 1usize..200, k in 1usize..16) {
        let u = batching::utilization(m, k);
        prop_assert!((0.0..=1.0).contains(&u));
        // Monotone floor (Equation 5).
        if k < m {
            prop_assert!(u >= batching::utilization_floor(k) - 1e-12);
        }
    }

    #[test]
    fn rng_below_is_uniform_enough(seed in any::<u64>(), bound in 1u64..64) {
        let mut rng = Rng::new(seed);
        let mut counts = vec![0u64; bound as usize];
        let draws = 64 * bound;
        for _ in 0..draws {
            counts[rng.below(bound) as usize] += 1;
        }
        // Every bucket hit at least once given 64 expected per bucket...
        // allow generous slack; this is a smoke property, not a chi-square.
        prop_assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn steal_criterion_monotone_in_remaining_work(
        v in 1u64..1_000_000,
        d_lo in 1u64..1_000_000_000,
        extra in 1u64..1_000_000_000,
        h in 1u64..16,
    ) {
        // Equation 2: accept iff V + D/(H+1) < D/H. If it holds for D it
        // must hold for any larger D' (stealing only gets more attractive
        // as more work remains).
        let accept = |d: u64| {
            let (v, d, h) = (v as f64, d as f64, h as f64);
            v + d / (h + 1.0) < d / h
        };
        if accept(d_lo) {
            prop_assert!(accept(d_lo + extra));
        }
    }
}

#[test]
fn distributed_equals_sequential_on_random_graphs() {
    // A coarse cross-check of the whole stack on arbitrary small graphs.
    for seed in 0..6 {
        let g = chaos::graph::builder::gnm(200, 1200, false, seed).to_undirected();
        let seq = run_sequential(Wcc::new(), &g, 100_000);
        let mut cfg = ChaosConfig::new(3);
        cfg.mem_budget = 512;
        cfg.chunk_bytes = 4096;
        let (_, dist) = run_chaos(cfg, Wcc::new(), &g);
        assert_eq!(seq.states, dist, "seed {seed}");
    }
}
