//! Genuinely out-of-core: chunk payloads on real files.
//!
//! The simulated cluster normally keeps chunk payloads in host memory (the
//! virtual clock charges I/O time either way). With `spill_dir` set, every
//! storage engine writes its edge, reverse-edge, update and input chunks
//! through the record codec into real files — one file per (partition,
//! structure) per machine, the layout of §7 of the paper — and decodes
//! them on every read. This example runs WCC both ways and checks the
//! results and simulated times are identical, then shows what landed on
//! disk.
//!
//! Run with: `cargo run --release --example out_of_core`

use chaos::prelude::*;
use chaos::storage::ScratchDir;

fn main() {
    let graph = RmatConfig::paper(12).generate().to_undirected();
    let scratch = ScratchDir::new("chaos-out-of-core").expect("scratch dir");

    let mut mem_cfg = ChaosConfig::new(4);
    mem_cfg.mem_budget = 64 * 1024;
    let mut file_cfg = mem_cfg.clone();
    file_cfg.spill_dir = Some(scratch.path().to_path_buf());

    let (mem_report, mem_states) = run_chaos(mem_cfg, Wcc::new(), &graph);
    let (file_report, file_states) = run_chaos(file_cfg, Wcc::new(), &graph);

    assert_eq!(mem_states, file_states, "backends agree on results");
    assert_eq!(
        mem_report.runtime, file_report.runtime,
        "virtual time is independent of the backend"
    );

    let mut files = 0usize;
    let mut bytes = 0u64;
    for entry in walk(scratch.path()) {
        files += 1;
        bytes += entry;
    }
    println!(
        "WCC on {} vertices / {} edges over 4 machines: {:.3} simulated s",
        graph.num_vertices,
        graph.num_edges(),
        mem_report.seconds()
    );
    println!(
        "file backend wrote {files} backing files, {:.1} MB on disk, identical results \
         and identical simulated time",
        bytes as f64 / 1e6
    );
    let components: std::collections::HashSet<u64> =
        mem_states.iter().map(|s| s.0).collect();
    println!("components found: {}", components.len());
}

fn walk(dir: &std::path::Path) -> Vec<u64> {
    let mut sizes = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for e in std::fs::read_dir(&d).expect("readable dir") {
            let e = e.expect("dir entry");
            let meta = e.metadata().expect("metadata");
            if meta.is_dir() {
                stack.push(e.path());
            } else {
                sizes.push(meta.len());
            }
        }
    }
    sizes
}
