//! End-to-end data integrity: checksum frames, silent corruption, scrub.
//!
//! Every sealed edge chunk, vertex spill and checkpoint snapshot travels
//! with a checksum frame that is verified on every read. This example
//! runs Pagerank three ways: clean, under a silent-corruption window
//! (bit-flips on the wire, caught by the frame check and repaired with
//! bounded-backoff re-reads), and under a crash that *tears* an in-flight
//! checkpoint write — which surfaces later, during rollback, and forces
//! the cluster one snapshot down the depth-2 committed-checkpoint chain.
//! A between-iterations scrub pass is enabled throughout, and the final
//! ranks of every variant are bit-identical.
//!
//! Run with: `cargo run --release --example integrity_scrub`

use chaos::prelude::*;
use chaos::sim::SECS;

fn main() {
    let graph = RmatConfig::paper(13).generate();

    let mut cfg = ChaosConfig::new(8);
    cfg.checkpoint = true;
    cfg.scrub = true;
    cfg.chunk_bytes = 64 * 1024;

    let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(5), &graph);
    println!(
        "clean run:     {:.3} simulated s, {} frames scrubbed, {:.1} KiB of checksum frames",
        clean.seconds(),
        clean.faults.frames_scrubbed,
        clean.faults.checksum_bytes as f64 / 1024.0
    );

    // A corruption window: for the first two simulated seconds, one in
    // three framed reads on machine 2 fails its checksum check. The
    // stored bytes are fine — the wire flipped bits — so the bounded-
    // backoff re-read ladder repairs every episode.
    let mut corrupt = cfg.clone();
    corrupt.faults = FaultPlan::none().with_corruption_fault(CorruptionFault {
        machine: 2,
        from: 0,
        until: 2 * SECS,
        salt: 0xB17F_11B5,
        one_in: 3,
    });
    let (dirty, dirty_states) = run_chaos(corrupt, Pagerank::new(5), &graph);
    println!(
        "corrupted run: {:.3} simulated s, {} corruptions detected, {} repaired",
        dirty.seconds(),
        dirty.faults.corruption_detected,
        dirty.faults.corruption_repaired
    );

    // A torn checkpoint write: machine 4 crashes during iteration 3's
    // scatter with a checkpoint copy in flight, persisting only a prefix.
    // The tear is silent until rollback re-reads the torn chunk, every
    // frame-check probe fails, and the coordinator aborts a second time —
    // one snapshot deeper.
    let mut torn = cfg.clone();
    torn.faults = FaultPlan::none().with_crash(CrashFault {
        machine: 4,
        trigger: CrashTrigger::Iteration {
            iteration: 3,
            phase: chaos::core::msg::PhaseKind::Scatter,
        },
        downtime: 10 * SECS,
        torn: true,
    });
    let (fallback, fallback_states) = run_chaos(torn, Pagerank::new(5), &graph);
    println!(
        "torn-write run: {:.3} simulated s, {} aborts ({} iterations redone) — \
         depth-2 checkpoint fallback",
        fallback.seconds(),
        fallback.faults.aborts,
        fallback.faults.iterations_redone
    );
    for a in &fallback.faults.abort_log {
        println!(
            "               abort @ {:.3} s -> gen {}, resume at iteration {} ({})",
            a.time as f64 / 1e9,
            a.gen,
            a.resume_iter,
            if a.redo { "redo" } else { "advance" }
        );
    }

    assert_eq!(clean_states, dirty_states, "repair must be exact");
    assert_eq!(clean_states, fallback_states, "fallback must be exact");
    assert!(dirty.faults.corruption_detected > 0);
    assert_eq!(fallback.faults.aborts, 2, "the tear forces a deeper abort");
    println!("final ranks identical across all three runs ✓");
}
