//! Web-graph analytics: the Figure 9 scenario.
//!
//! The paper's real-world workload is the Web Data Commons hyperlink graph
//! processed from magnetic disks. This example generates the synthetic
//! stand-in (power-law degrees, host locality), then runs the paper's two
//! representative algorithms — BFS and Pagerank — on an HDD-backed cluster
//! at several machine counts, printing the strong-scaling curve.
//!
//! Run with: `cargo run --release --example webgraph_analytics`

use chaos::prelude::*;

fn main() {
    let cfg_graph = WebGraphConfig::scaled(1 << 15);
    let graph = cfg_graph.generate();
    println!(
        "web graph: {} pages, {} links ({} hosts)\n",
        graph.num_vertices,
        graph.num_edges(),
        graph.num_vertices / cfg_graph.pages_per_host
    );

    // BFS needs the undirected expansion (Table 1); Pagerank runs on the
    // directed graph.
    let undirected = graph.to_undirected();

    println!("{:<6} {:>12} {:>12} {:>10} {:>10}", "m", "BFS (s)", "PR (s)", "BFS x", "PR x");
    let mut bfs1 = 0.0;
    let mut pr1 = 0.0;
    for m in [1usize, 2, 4, 8, 16] {
        let mk = |machines: usize| {
            let mut cfg = ChaosConfig::new(machines).with_hdd();
            cfg.chunk_bytes = 64 * 1024;
            cfg.mem_budget = 256 * 1024;
            cfg
        };
        let (bfs_rep, levels) = run_chaos(mk(m), Bfs::new(0), &undirected);
        let (pr_rep, ranks) = run_chaos(mk(m), Pagerank::new(5), &graph);
        if m == 1 {
            bfs1 = bfs_rep.seconds();
            pr1 = pr_rep.seconds();
        }
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>9.1}x {:>9.1}x",
            m,
            bfs_rep.seconds(),
            pr_rep.seconds(),
            bfs1 / bfs_rep.seconds(),
            pr1 / pr_rep.seconds()
        );
        // Sanity: front pages (low offsets within host blocks) are hot.
        let reached = levels.iter().filter(|&&l| l != u32::MAX).count();
        assert!(reached > 0);
        assert_eq!(ranks.len() as u64, graph.num_vertices);
    }
    println!("\nHDD bandwidth is half the SSD's; the curve shape matches Figure 9.");
}
