//! Quickstart: Pagerank on a simulated Chaos cluster.
//!
//! Generates an RMAT graph, runs five Pagerank iterations on clusters of
//! 1, 4 and 16 machines, and prints the run reports — including the
//! runtime breakdown of Figure 17 and the aggregate storage bandwidth of
//! Figure 14.
//!
//! Run with: `cargo run --release --example quickstart`

use chaos::prelude::*;

fn main() {
    let scale = 14;
    let graph = RmatConfig::paper(scale).generate();
    println!(
        "RMAT-{scale}: {} vertices, {} edges\n",
        graph.num_vertices,
        graph.num_edges()
    );

    let mut single_machine = 0.0;
    for machines in [1usize, 4, 16] {
        let mut cfg = ChaosConfig::new(machines);
        cfg.chunk_bytes = 64 * 1024; // scaled-down chunk for a scaled graph
        let (report, ranks) = run_chaos(cfg, Pagerank::new(5), &graph);
        if machines == 1 {
            single_machine = report.seconds();
        }
        let [gp_m, gp_s, copy, merge, merge_wait, barrier] = report.mean_breakdown_fractions();
        println!("== {machines} machine(s) ==");
        println!(
            "  runtime          {:>8.3} s  (speedup {:.2}x, preprocess {:.3} s)",
            report.seconds(),
            single_machine / report.seconds(),
            report.preprocess_time as f64 / 1e9,
        );
        println!(
            "  aggregate bw     {:>8.1} MB/s across {} devices (util {:.1}%)",
            report.aggregate_bandwidth() / 1e6,
            machines,
            100.0 * report.mean_device_utilization()
        );
        println!(
            "  breakdown        gp={:.0}%+{:.0}% copy={:.0}% merge={:.0}% wait={:.0}% barrier={:.0}%",
            100.0 * gp_m,
            100.0 * gp_s,
            100.0 * copy,
            100.0 * merge,
            100.0 * merge_wait,
            100.0 * barrier
        );
        println!(
            "  partitions={} steals={} network={} MB\n",
            report.partitions,
            report.steals,
            report.fabric.remote_bytes / 1_000_000
        );
        // The vertex with the highest rank is a low-id RMAT hub.
        let (best, rank) = ranks
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .expect("non-empty graph");
        assert!(best < 32, "RMAT hubs live at low ids");
        println!("  hottest vertex: v{best} with rank {rank:.1}\n", rank = rank.0);
    }
}
