//! Writing your own algorithm against the GAS API.
//!
//! Implements *k-hop reachability counting* — for every vertex, how many
//! vertices can reach it within k hops — as a fresh [`GasProgram`], then
//! validates the distributed run against the bundled sequential executor.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use chaos::prelude::*;
use chaos_graph::VertexId;

/// Vertex state: `(reachers_found, newly_found_last_round)`.
type State = (u64, u64);

/// Counts, per vertex, the vertices within `k` in-hops (including itself).
///
/// Each round every vertex floods the number of *new* reachers it learned
/// about last round; receivers accumulate. This over-counts on graphs with
/// multiple paths — exactly like the classic "semi-naive" Datalog
/// evaluation it mimics — so we run it on trees/DAG-ish graphs here; the
/// point of the example is the API, not the algorithm.
#[derive(Clone)]
struct KHopMass {
    k: u32,
}

impl GasProgram for KHopMass {
    type VertexState = State;
    type Update = u64;
    type Accum = u64;

    fn name(&self) -> &'static str {
        "KHopMass"
    }

    fn init(&self, _v: VertexId, _out_degree: u64) -> State {
        (1, 1) // Every vertex reaches itself in zero hops.
    }

    fn scatter(&self, _v: VertexId, s: &State, _e: &Edge, _iter: u32) -> Option<u64> {
        (s.1 > 0).then_some(s.1)
    }

    fn gather(&self, acc: &mut u64, _dst: VertexId, _s: &State, payload: &u64) {
        *acc += payload;
    }

    fn merge(&self, into: &mut u64, from: &u64) {
        *into += from;
    }

    fn apply(&self, _v: VertexId, s: &mut State, acc: &u64, _iter: u32) -> bool {
        s.0 += acc;
        s.1 = *acc;
        *acc > 0
    }

    fn end_iteration(&mut self, iter: u32, agg: &IterationAggregates) -> Control {
        if iter + 1 >= self.k || agg.vertices_changed == 0 {
            Control::Done
        } else {
            Control::Continue
        }
    }
}

fn main() {
    // A 4-ary out-tree of depth 6: every vertex's k-hop mass is exact.
    let mut edges = Vec::new();
    let n: u64 = (4u64.pow(7) - 1) / 3; // 5461 vertices
    for v in 1..n {
        edges.push(Edge::new((v - 1) / 4, v));
    }
    let graph = InputGraph::new(n, edges, false);
    let program = KHopMass { k: 3 };

    // Reference run: the sequential executor from chaos-gas.
    let seq = run_sequential(program.clone(), &graph, 10);

    // Distributed run on 8 simulated machines.
    let mut cfg = ChaosConfig::new(8);
    cfg.mem_budget = 8 * 1024; // force many partitions
    let (report, states) = run_chaos(cfg, program, &graph);

    assert_eq!(states, seq.states, "distributed == sequential");
    // The root saw only itself; depth-3 vertices saw their 3 ancestors.
    assert_eq!(states[0].0, 1);
    println!(
        "k-hop mass over {} vertices on 8 machines: {:.3} simulated s, {} partitions, OK",
        n,
        report.seconds(),
        report.partitions
    );
    println!("distributed result matches the sequential GAS executor exactly");
}
