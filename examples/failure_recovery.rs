//! Checkpointing and multi-fault recovery (§6.6).
//!
//! Runs Pagerank with per-barrier two-phase checkpointing, then repeats
//! the run under a multi-fault schedule: two machine crashes in different
//! iterations plus a transient device-fault burst. The cluster rolls back
//! to the last committed checkpoint after each crash, the failed machines
//! reboot, interrupted iterations are redone, device errors are retried
//! with bounded backoff — and the final ranks are bit-identical to the
//! fault-free run.
//!
//! Run with: `cargo run --release --example failure_recovery`

use chaos::prelude::*;
use chaos::sim::SECS;

fn main() {
    let graph = RmatConfig::paper(13).generate();

    let mut cfg = ChaosConfig::new(8);
    cfg.checkpoint = true;
    cfg.chunk_bytes = 64 * 1024;

    let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(5), &graph);
    println!(
        "clean run:    {:.3} simulated s over {} iterations (checkpoint every barrier)",
        clean.seconds(),
        clean.iterations
    );

    // Checkpoint overhead vs no checkpointing (Figure 13: under 6%).
    let mut nock = cfg.clone();
    nock.checkpoint = false;
    let (bare, _) = run_chaos(nock, Pagerank::new(5), &graph);
    println!(
        "no checkpoints: {:.3} simulated s  (overhead {:+.1}%)",
        bare.seconds(),
        100.0 * (clean.runtime as f64 / bare.runtime as f64 - 1.0)
    );

    // The fault schedule: machine 3 dies during iteration 2's scatter,
    // machine 5 dies during iteration 4's scatter, and machine 0's device
    // rejects reads and writes for half a second just as the first reboot
    // completes — so the redo of iteration 2 runs straight into the
    // device-fault window and has to retry its way through.
    cfg.faults = FaultPlan::none()
        .with_crash(CrashFault {
            machine: 3,
            trigger: CrashTrigger::Iteration {
                iteration: 2,
                phase: chaos::core::msg::PhaseKind::Scatter,
            },
            downtime: 10 * SECS,
            torn: false,
        })
        .with_crash(CrashFault {
            machine: 5,
            trigger: CrashTrigger::Iteration {
                iteration: 4,
                phase: chaos::core::msg::PhaseKind::Scatter,
            },
            downtime: 30 * SECS,
            torn: false,
        })
        .with_device_fault(DeviceFault {
            machine: 0,
            from: 10 * SECS,
            until: 10 * SECS + SECS / 2,
            reads: true,
            writes: true,
        });
    let (failed, failed_states) = run_chaos(cfg, Pagerank::new(5), &graph);
    println!(
        "faulted run:  {:.3} simulated s (2 crashes + device burst)",
        failed.seconds()
    );
    let fa = &failed.faults;
    println!(
        "fault account: {} aborts, {} iterations redone, {} device retries,",
        fa.aborts, fa.iterations_redone, fa.device_retries
    );
    println!(
        "               {:.3} s lost to faults, {:.1} MiB checkpointed in {:.3} s",
        fa.faulted_time as f64 / 1e9,
        fa.checkpoint_bytes as f64 / (1024.0 * 1024.0),
        fa.checkpoint_time as f64 / 1e9
    );
    for a in &fa.abort_log {
        println!(
            "               abort @ {:.3} s -> gen {}, resume at iteration {} ({})",
            a.time as f64 / 1e9,
            a.gen,
            a.resume_iter,
            if a.redo { "redo" } else { "advance" }
        );
    }

    assert_eq!(clean_states.len(), failed_states.len());
    assert!(
        clean_states
            .iter()
            .zip(failed_states.iter())
            .all(|(a, b)| a.0 == b.0),
        "recovery must reproduce the fault-free ranks exactly"
    );
    assert!(failed.runtime > clean.runtime);
    println!("final ranks identical to the fault-free run ✓");
}
