//! Checkpointing and transient-failure recovery (§6.6).
//!
//! Runs Pagerank with per-barrier two-phase checkpointing, then repeats
//! the run with a transient machine failure injected mid-computation. The
//! cluster rolls back to the last committed checkpoint, the failed machine
//! reboots, the interrupted iteration is redone — and the final ranks are
//! bit-identical to the failure-free run.
//!
//! Run with: `cargo run --release --example failure_recovery`

use chaos::prelude::*;

fn main() {
    let graph = RmatConfig::paper(13).generate();

    let mut cfg = ChaosConfig::new(8);
    cfg.checkpoint = true;
    cfg.chunk_bytes = 64 * 1024;

    let (clean, clean_states) = run_chaos(cfg.clone(), Pagerank::new(5), &graph);
    println!(
        "clean run:    {:.3} simulated s over {} iterations (checkpoint every barrier)",
        clean.seconds(),
        clean.iterations
    );

    // Checkpoint overhead vs no checkpointing (Figure 13: under 6%).
    let mut nock = cfg.clone();
    nock.checkpoint = false;
    let (bare, _) = run_chaos(nock, Pagerank::new(5), &graph);
    println!(
        "no checkpoints: {:.3} simulated s  (overhead {:+.1}%)",
        bare.seconds(),
        100.0 * (clean.runtime as f64 / bare.runtime as f64 - 1.0)
    );

    // Now kill machine 3 during iteration 2's scatter phase.
    cfg.failure = Some(FailureSpec {
        machine: 3,
        iteration: 2,
        downtime: 0,
    });
    let (failed, failed_states) = run_chaos(cfg, Pagerank::new(5), &graph);
    println!(
        "failure run:  {:.3} simulated s (rollback + 30 s reboot + redo iteration 2)",
        failed.seconds()
    );

    assert_eq!(clean_states.len(), failed_states.len());
    assert!(
        clean_states
            .iter()
            .zip(failed_states.iter())
            .all(|(a, b)| a.0 == b.0),
        "recovery must reproduce the failure-free ranks exactly"
    );
    assert!(failed.runtime > clean.runtime);
    println!("final ranks identical to the failure-free run ✓");
}
