//! Capacity scaling to a trillion edges (§9.3).
//!
//! The paper's capacity milestone — BFS on RMAT-36 (1 trillion edges,
//! 16 TB of input) in ~9 hours, 5 Pagerank iterations in ~19 hours, on 32
//! machines' HDDs — runs for days of simulated I/O. Chaos is I/O-bound, so
//! this example measures real runs at three feasible scales, verifies that
//! device I/O per edge is constant (the linearity the extrapolation
//! rests on), and projects the trillion-edge numbers.
//!
//! Run with: `cargo run --release --example capacity_projection`

use chaos::core::CapacityModel;
use chaos::prelude::*;

fn main() {
    let machines = 8; // scaled from the paper's 32
    println!("measuring BFS I/O per edge at increasing scales (HDD, {machines} machines)...\n");

    let mut models = Vec::new();
    for scale in [13u32, 14, 15] {
        let graph = RmatConfig::paper(scale).generate().to_undirected();
        let mut cfg = ChaosConfig::new(machines).with_hdd();
        cfg.chunk_bytes = 64 * 1024;
        let (report, _) = run_chaos(cfg, Bfs::new(0), &graph);
        let model = CapacityModel::from_report(&report, graph.num_edges());
        println!(
            "RMAT-{scale}: {:>6.1} simulated s, {:>7.1} MB I/O, {:>6.1} bytes/edge",
            report.seconds(),
            report.total_device_bytes() as f64 / 1e6,
            model.io_per_edge()
        );
        models.push(model);
    }

    // Linearity check: bytes/edge must be stable across scales.
    let per_edge: Vec<f64> = models.iter().map(CapacityModel::io_per_edge).collect();
    let spread = (per_edge.iter().cloned().fold(f64::MIN, f64::max)
        - per_edge.iter().cloned().fold(f64::MAX, f64::min))
        / per_edge[0];
    println!("\nbytes/edge spread across scales: {:.1}%", 100.0 * spread);
    assert!(spread < 0.25, "I/O must scale ~linearly in edges");

    // Project to the paper's RMAT-36 on 32 machines.
    let model = models.last().expect("measured at least one scale");
    let trillion = 1u64 << 40; // 2^40 ≈ 1.1 trillion edges (RMAT-36: 2^40)
    let p = model.predict(trillion, 32.0 / machines as f64, 1.0);
    println!(
        "\nprojected BFS on RMAT-36 (2^40 edges, 32 machines, HDD):\n  {:.1} TB of device I/O, {:.1} hours",
        p.io_bytes as f64 / 1e12,
        p.runtime as f64 / 3.6e12
    );
    println!("paper §9.3 reports: 214 TB of I/O, ~9 hours — same order throughout");
}
